"""Property-based correctness of the entire rule catalogue.

For every transformation rule in the default rule set, a *scenario* builds a
plan over randomly generated relations whose root matches the rule's
left-hand side pattern.  The test applies the rule and checks that the
original and rewritten plans evaluate to relations equivalent at the rule's
*declared* equivalence type.  This is the executable counterpart of the
paper's claim that "all transformation rules can be verified formally" —
here they are verified empirically on thousands of random instances.
"""

from hypothesis import given, settings

from repro.core.equivalence import equivalent
from repro.core.expressions import count, equals
from repro.core.operations import (
    Aggregation,
    CartesianProduct,
    Coalescing,
    Difference,
    DuplicateElimination,
    LiteralRelation,
    Operation,
    Projection,
    Selection,
    Sort,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    TransferToDBMS,
    TransferToStratum,
    Union,
    UnionAll,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.core.rules import DEFAULT_RULES
from repro.core.schema import RelationSchema, STRING

from .strategies import (
    NARROW_TEMPORAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    narrow_temporal_relations,
    snapshot_relations,
)

CONTEXT = EvaluationContext()

#: A second temporal schema for product scenarios (no attribute clashes).
DEPT_SCHEMA = RelationSchema.temporal([("Dept", STRING)], name="D")
#: A second snapshot schema for product scenarios.
PLAIN_DEPT_SCHEMA = RelationSchema.snapshot([("Dept", STRING)], name="DD")


def as_dept(relation: Relation, temporal: bool = True) -> Relation:
    """Re-key a narrow temporal relation onto the Dept schema (no name clashes)."""
    if temporal:
        rows = [(tup["Name"], tup["T1"], tup["T2"]) for tup in relation]
        return Relation.from_rows(DEPT_SCHEMA, rows)
    rows = [(tup["Name"],) for tup in relation]
    return Relation.from_rows(PLAIN_DEPT_SCHEMA, rows)


def scenarios(t1: Relation, t2: Relation, s1: Relation, s2: Relation):
    """Plans whose roots exercise every rule of the catalogue.

    ``t1``/``t2`` are narrow temporal relations, ``s1``/``s2`` snapshot
    relations.  Not every plan matches every rule — the driver simply tries
    every (rule, plan) pair and skips non-matches — but every rule matches at
    least one of these plans for at least some generated input.
    """
    lt1, lt2 = LiteralRelation(t1), LiteralRelation(t2)
    ls1, ls2 = LiteralRelation(s1), LiteralRelation(s2)
    dedup_t1 = TemporalDuplicateElimination(lt1)
    dedup_t2 = TemporalDuplicateElimination(lt2)
    dept = LiteralRelation(as_dept(t2))
    plain_dept = LiteralRelation(as_dept(t2, temporal=False))
    name_filter = equals("Name", "John")

    product = TemporalCartesianProduct(dedup_t1, TemporalDuplicateElimination(dept))
    c9_keep = [
        attribute
        for attribute in product.output_schema().attributes
        if attribute not in ("1.T1", "1.T2", "2.T1", "2.T2")
    ]

    plans = [
        # Duplicate elimination rules.
        DuplicateElimination(ls1),
        DuplicateElimination(DuplicateElimination(ls1)),
        TemporalDuplicateElimination(lt1),
        TemporalDuplicateElimination(dedup_t1),
        DuplicateElimination(Union(ls1, ls2)),
        TemporalDuplicateElimination(TemporalUnion(lt1, lt2)),
        # Coalescing rules.
        Coalescing(lt1),
        Coalescing(Coalescing(lt1)),
        Selection(name_filter, Coalescing(lt1)),
        Projection(["Name"], Coalescing(lt1)),
        Coalescing(UnionAll(Coalescing(lt1), Coalescing(lt2))),
        Coalescing(TemporalUnion(Coalescing(lt1), Coalescing(lt2))),
        Coalescing(TemporalAggregation(["Name"], [count()], Coalescing(lt1))),
        Coalescing(Projection(["Name", "T1", "T2"], Coalescing(dedup_t1))),
        Coalescing(Projection(c9_keep, product)),
        Coalescing(TemporalDifference(dedup_t1, lt2)),
        # Sorting rules.
        Sort(OrderSpec.ascending("Name"), lt1),
        Sort(OrderSpec.ascending("Name"), Sort(OrderSpec.ascending("Name", "T1"), lt1)),
        Sort(OrderSpec.ascending("Name", "T1"), Sort(OrderSpec.ascending("Name"), lt1)),
        Sort(OrderSpec.ascending("Name"), Selection(name_filter, lt1)),
        Sort(OrderSpec.ascending("Name"), Projection(["Name", "T1", "T2"], lt1)),
        Sort(OrderSpec.ascending("Name"), DuplicateElimination(ls1)),
        Sort(OrderSpec.ascending("Name"), Coalescing(lt1)),
        Sort(OrderSpec.ascending("Name"), Difference(ls1, ls2)),
        Sort(OrderSpec.ascending("Name"), TemporalDifference(lt1, lt2)),
        # Conventional selection rules.
        Selection(name_filter, Selection(equals("Name", "Anna"), ls1)),
        Selection(name_filter, Projection(["Name"], ls1)),
        Selection(name_filter, Sort(OrderSpec.ascending("Amount"), ls1)),
        Selection(name_filter, DuplicateElimination(ls1)),
        Selection(name_filter, TemporalDuplicateElimination(lt1)),
        Selection(name_filter, CartesianProduct(ls1, plain_dept)),
        Selection(equals("Dept", "x"), CartesianProduct(ls1, plain_dept)),
        Selection(name_filter, TemporalCartesianProduct(lt1, dept)),
        Selection(equals("Dept", "x"), TemporalCartesianProduct(lt1, dept)),
        Selection(name_filter, UnionAll(ls1, ls2)),
        Selection(name_filter, Union(ls1, ls2)),
        Selection(name_filter, TemporalUnion(lt1, lt2)),
        Selection(name_filter, Difference(ls1, ls2)),
        Selection(name_filter, TemporalDifference(lt1, lt2)),
        Selection(name_filter, Aggregation(["Name"], [count()], ls1)),
        Selection(name_filter, TemporalAggregation(["Name"], [count()], lt1)),
        # Conventional projection / commutativity rules.
        Projection(["Name"], Projection(["Name", "Amount"], ls1)),
        Projection(["Name"], UnionAll(ls1, ls2)),
        CartesianProduct(ls1, plain_dept),
        UnionAll(ls1, ls2),
        Union(ls1, ls2),
        TemporalUnion(lt1, lt2),
        UnionAll(UnionAll(ls1, ls2), ls1),
        # Transfer rules.
        TransferToStratum(TransferToDBMS(lt1)),
        TransferToDBMS(TransferToStratum(lt1)),
        TransferToStratum(Coalescing(lt1)),
        TransferToStratum(Sort(OrderSpec.ascending("Name"), lt1)),
        TransferToStratum(TemporalDifference(lt1, lt2)),
        Selection(name_filter, TransferToStratum(ls1)),
        Sort(OrderSpec.ascending("Name"), TransferToStratum(lt1)),
        Difference(TransferToStratum(ls1), TransferToStratum(ls2)),
    ]
    return plans


def check_all_rules_on(plans) -> int:
    """Apply every rule to every plan root; verify the declared equivalence."""
    verified = 0
    for rule in DEFAULT_RULES:
        for plan in plans:
            application = rule.apply(plan)
            if application is None:
                continue
            declared = application.equivalence or rule.equivalence
            original = plan.evaluate(CONTEXT)
            rewritten = application.replacement.evaluate(CONTEXT)
            if original.is_empty() and rewritten.is_empty():
                verified += 1
                continue
            assert equivalent(declared, original, rewritten), (
                f"rule {rule.name} does not preserve {declared} "
                f"on plan {plan}"
            )
            verified += 1
    return verified


class TestRuleCatalogueCorrectness:
    @settings(max_examples=40, deadline=None)
    @given(
        narrow_temporal_relations(max_size=5),
        narrow_temporal_relations(max_size=4),
        snapshot_relations(max_size=5),
        snapshot_relations(max_size=4),
    )
    def test_every_matching_rule_preserves_its_declared_equivalence(self, t1, t2, s1, s2):
        plans = scenarios(t1, t2, s1, s2)
        check_all_rules_on(plans)

    def test_every_rule_matches_at_least_one_scenario(self):
        """Guards against scenarios silently not exercising a rule at all."""
        t1 = Relation.from_rows(
            NARROW_TEMPORAL_SCHEMA,
            [("John", 1, 4), ("John", 3, 6), ("John", 6, 8), ("Anna", 2, 5)],
        )
        t2 = Relation.from_rows(NARROW_TEMPORAL_SCHEMA, [("John", 2, 5), ("Mia", 1, 3)])
        s1 = Relation.from_rows(SNAPSHOT_SCHEMA, [("John", 1), ("John", 1), ("Anna", 2)])
        s2 = Relation.from_rows(SNAPSHOT_SCHEMA, [("John", 1), ("Mia", 3)])
        plans = scenarios(t1, t2, s1, s2)
        unmatched = []
        for rule in DEFAULT_RULES:
            if not any(rule.apply(plan) is not None for plan in plans):
                unmatched.append(rule.name)
        # S1 needs an argument with a known order, which the literal-based
        # scenarios only produce through nested sorts; it is exercised there.
        assert unmatched == [], f"rules never exercised: {unmatched}"

    def test_catalogue_is_nonempty_and_named_uniquely(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(names) == len(set(names))
        assert len(names) >= 50
