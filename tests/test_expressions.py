"""Unit tests for scalar expressions, predicates, projection items and aggregates."""

import pytest

from repro.core.exceptions import AttributeNotFound, EvaluationError
from repro.core.expressions import (
    AggregateFunction,
    AggregateKind,
    And,
    Arithmetic,
    ArithmeticOperator,
    AttributeRef,
    Comparison,
    ComparisonOperator,
    Literal,
    Not,
    Or,
    ProjectionItem,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    attribute,
    between,
    count,
    equals,
    greater_than,
    less_than,
    literal,
    not_equals,
    projection_items,
)
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.core.tuples import Tuple

SCHEMA = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)])


def row(name="John", amount=5):
    return Tuple(SCHEMA, {"Name": name, "Amount": amount})


class TestBasicExpressions:
    def test_attribute_ref(self):
        assert AttributeRef("Name").evaluate(row()) == "John"
        assert AttributeRef("Name").attributes() == {"Name"}

    def test_missing_attribute(self):
        with pytest.raises(AttributeNotFound):
            AttributeRef("Salary").evaluate(row())

    def test_literal(self):
        assert Literal(42).evaluate(row()) == 42
        assert Literal(42).attributes() == frozenset()

    def test_comparisons(self):
        assert equals("Name", "John").evaluate(row())
        assert not_equals("Name", "Anna").evaluate(row())
        assert less_than("Amount", 10).evaluate(row())
        assert greater_than("Amount", 1).evaluate(row())
        assert Comparison(ComparisonOperator.LE, attribute("Amount"), literal(5)).evaluate(row())
        assert Comparison(ComparisonOperator.GE, attribute("Amount"), literal(5)).evaluate(row())

    def test_comparison_type_error_is_wrapped(self):
        predicate = less_than("Name", 5)
        with pytest.raises(EvaluationError):
            predicate.evaluate(row())

    def test_boolean_connectives(self):
        predicate = And(equals("Name", "John"), greater_than("Amount", 1))
        assert predicate.evaluate(row())
        assert not And(equals("Name", "John"), greater_than("Amount", 10)).evaluate(row())
        assert Or(equals("Name", "Anna"), equals("Name", "John")).evaluate(row())
        assert Not(equals("Name", "Anna")).evaluate(row())

    def test_between(self):
        assert between("Amount", 1, 5).evaluate(row())
        assert not between("Amount", 6, 9).evaluate(row())

    def test_attributes_of_composite(self):
        predicate = And(equals("Name", "John"), greater_than("Amount", 1))
        assert predicate.attributes() == {"Name", "Amount"}

    def test_arithmetic(self):
        doubled = Arithmetic(ArithmeticOperator.MUL, attribute("Amount"), literal(2))
        assert doubled.evaluate(row()) == 10
        added = Arithmetic(ArithmeticOperator.ADD, attribute("Amount"), literal(1))
        assert added.evaluate(row()) == 6
        divided = Arithmetic(ArithmeticOperator.DIV, attribute("Amount"), literal(2))
        assert divided.evaluate(row()) == 2.5

    def test_division_by_zero(self):
        division = Arithmetic(ArithmeticOperator.DIV, attribute("Amount"), literal(0))
        with pytest.raises(EvaluationError):
            division.evaluate(row())


class TestSQLRendering:
    def test_comparison_sql(self):
        assert equals("Name", "John").to_sql() == "(Name = 'John')"

    def test_string_escaping(self):
        assert Literal("O'Brien").to_sql() == "'O''Brien'"

    def test_boolean_sql(self):
        sql = And(equals("Name", "John"), greater_than("Amount", 1)).to_sql()
        assert "AND" in sql

    def test_not_sql(self):
        assert Not(equals("Name", "John")).to_sql().startswith("(NOT")

    def test_identifier_quoting(self):
        assert AttributeRef("1.T1").to_sql() == '"1.T1"'


class TestProjectionItems:
    def test_plain_attribute(self):
        item = ProjectionItem(attribute("Name"))
        assert item.output_name == "Name"
        assert item.is_plain_attribute()

    def test_alias(self):
        item = ProjectionItem(attribute("Name"), alias="Who")
        assert item.output_name == "Who"
        assert not item.is_plain_attribute()

    def test_computed_item_requires_alias(self):
        item = ProjectionItem(Arithmetic(ArithmeticOperator.ADD, attribute("Amount"), literal(1)))
        with pytest.raises(AttributeNotFound):
            _ = item.output_name

    def test_projection_items_helper(self):
        items = projection_items("Name", ProjectionItem(attribute("Amount"), alias="Total"))
        assert [item.output_name for item in items] == ["Name", "Total"]

    def test_projection_items_helper_rejects_garbage(self):
        with pytest.raises(TypeError):
            projection_items(42)


class TestAggregates:
    def rows(self):
        return [row("a", 1), row("b", 2), row("c", 3)]

    def test_count_star(self):
        assert count().compute(self.rows()) == 3
        assert count().output_name == "count"

    def test_sum(self):
        assert agg_sum("Amount").compute(self.rows()) == 6
        assert agg_sum("Amount").output_name == "sum_Amount"

    def test_min_max_avg(self):
        assert agg_min("Amount").compute(self.rows()) == 1
        assert agg_max("Amount").compute(self.rows()) == 3
        assert agg_avg("Amount").compute(self.rows()) == 2

    def test_empty_group(self):
        assert count().compute([]) == 0
        assert agg_sum("Amount").compute([]) is None

    def test_alias(self):
        assert agg_sum("Amount", alias="total").output_name == "total"

    def test_non_count_requires_argument(self):
        with pytest.raises(AttributeNotFound):
            AggregateFunction(AggregateKind.SUM)

    def test_sql(self):
        assert agg_sum("Amount").to_sql() == "SUM(Amount) AS sum_Amount"
        assert count().to_sql() == "COUNT(*) AS count"


class TestCompilation:
    """``Expression.compile`` closures agree with tree-walking ``evaluate``."""

    CASES = [
        equals("Name", "John"),
        not_equals("Name", "Anna"),
        less_than("Amount", 10),
        greater_than("Amount", 3),
        between("Amount", 2, 9),
        And(equals("Name", "John"), greater_than("Amount", 1)),
        Or(equals("Name", "Anna"), equals("Amount", 5)),
        Not(equals("Name", "Anna")),
        Arithmetic(ArithmeticOperator.ADD, attribute("Amount"), literal(2)),
        Arithmetic(ArithmeticOperator.MUL, attribute("Amount"), attribute("Amount")),
        literal(True),
        attribute("Amount"),
    ]

    def test_compiled_matches_evaluate(self):
        tuples = [row(), row("Anna", 2), row("Mia", 10)]
        for expression in self.CASES:
            schemaless = expression.compile()
            positional = expression.compile(SCHEMA)
            for tup in tuples:
                expected = expression.evaluate(tup)
                assert schemaless(tup) == expected
                assert positional(tup) == expected

    def test_compiled_comparison_wraps_type_errors(self):
        predicate = less_than("Name", 3)
        compiled = predicate.compile(SCHEMA)
        with pytest.raises(EvaluationError):
            compiled(row())

    def test_compiled_division_by_zero_raises(self):
        expression = Arithmetic(ArithmeticOperator.DIV, attribute("Amount"), literal(0))
        with pytest.raises(EvaluationError):
            expression.compile(SCHEMA)(row())

    def test_compiled_short_circuits_like_evaluate(self):
        # The second operand would raise on evaluation; conjunction must
        # short-circuit exactly as all()/any() do in the reference.
        exploding = Comparison(ComparisonOperator.LT, attribute("Missing"), literal(1))
        predicate = And(equals("Name", "Anna"), exploding)
        assert predicate.compile(SCHEMA)(row()) is False
        disjunction = Or(equals("Name", "John"), exploding)
        assert disjunction.compile(SCHEMA)(row()) is True

    def test_compile_against_missing_attribute_falls_back(self):
        other = RelationSchema.snapshot([("Other", INTEGER)])
        compiled = attribute("Name").compile(other)
        assert compiled(row()) == "John"

    def test_guarded_compile_handles_permuted_schemas(self):
        from repro.core.expressions import guarded_compile

        permuted = RelationSchema.snapshot([("Amount", INTEGER), ("Name", STRING)])
        predicate = equals("Name", "John")
        guarded = guarded_compile(predicate, SCHEMA)
        assert guarded(row()) is True
        assert guarded(Tuple(permuted, {"Amount": 5, "Name": "John"})) is True

    def test_projection_item_compile(self):
        item = ProjectionItem(
            Arithmetic(ArithmeticOperator.ADD, attribute("Amount"), literal(1)), "Bigger"
        )
        assert item.compile(SCHEMA)(row()) == 6
