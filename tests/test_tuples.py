"""Unit tests for tuples over schemas."""

import pytest

from repro.core.exceptions import SchemaError, TemporalSchemaError
from repro.core.period import Period
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.core.tuples import Tuple

TEMPORAL = RelationSchema.temporal([("EmpName", STRING), ("Dept", STRING)], name="EMPLOYEE")
SNAPSHOT = RelationSchema.snapshot([("EmpName", STRING), ("Amount", INTEGER)])


def john(start=1, end=8, dept="Sales"):
    return Tuple(TEMPORAL, {"EmpName": "John", "Dept": dept, "T1": start, "T2": end})


class TestConstruction:
    def test_from_mapping(self):
        tup = john()
        assert tup["EmpName"] == "John"
        assert tup["T2"] == 8

    def test_from_sequence_uses_schema_order(self):
        tup = Tuple.from_sequence(TEMPORAL, ["John", "Sales", 1, 8])
        assert tup == john()

    def test_from_sequence_wrong_arity(self):
        with pytest.raises(SchemaError):
            Tuple.from_sequence(TEMPORAL, ["John", "Sales", 1])

    def test_missing_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Tuple(TEMPORAL, {"EmpName": "John", "Dept": "Sales", "T1": 1})

    def test_extra_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Tuple(SNAPSHOT, {"EmpName": "John", "Amount": 3, "Extra": 1})

    def test_domain_violation_rejected(self):
        with pytest.raises(SchemaError):
            Tuple(SNAPSHOT, {"EmpName": "John", "Amount": "three"})

    def test_invalid_period_rejected(self):
        with pytest.raises(Exception):
            john(start=8, end=1)


class TestAccess:
    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            john()["Salary"]

    def test_get_with_default(self):
        assert john().get("Salary", 0) == 0
        assert john().get("Dept") == "Sales"

    def test_values_in_schema_order(self):
        assert john().values() == ("John", "Sales", 1, 8)

    def test_as_dict(self):
        assert john().as_dict() == {"EmpName": "John", "Dept": "Sales", "T1": 1, "T2": 8}

    def test_period(self):
        assert john().period == Period(1, 8)

    def test_snapshot_tuple_has_no_period(self):
        tup = Tuple(SNAPSHOT, {"EmpName": "John", "Amount": 3})
        assert not tup.is_temporal
        with pytest.raises(TemporalSchemaError):
            _ = tup.period


class TestValueEquivalence:
    def test_value_part_excludes_time(self):
        assert john().value_part() == ("John", "Sales")

    def test_value_equivalent_ignores_periods(self):
        assert john(1, 8).value_equivalent(john(6, 11))

    def test_value_equivalence_requires_same_values(self):
        assert not john(dept="Sales").value_equivalent(john(dept="Ads"))


class TestDerivation:
    def test_project(self):
        narrow = TEMPORAL.project(["EmpName", "T1", "T2"])
        projected = john().project(narrow)
        assert projected.values() == ("John", 1, 8)

    def test_replace(self):
        replaced = john().replace(Dept="Ads")
        assert replaced["Dept"] == "Ads"
        assert john()["Dept"] == "Sales"

    def test_replace_unknown_attribute(self):
        with pytest.raises(SchemaError):
            john().replace(Salary=10)

    def test_with_period(self):
        moved = john().with_period(Period(3, 5))
        assert moved.period == Period(3, 5)
        assert moved["EmpName"] == "John"

    def test_without_time(self):
        snapshot = john().without_time()
        assert not snapshot.is_temporal
        assert snapshot.values() == ("John", "Sales")

    def test_concat(self):
        other_schema = RelationSchema.snapshot([("Prj", STRING)])
        other = Tuple(other_schema, {"Prj": "P1"})
        combined_schema = RelationSchema.snapshot(
            [("EmpName", STRING), ("Amount", INTEGER), ("Prj", STRING)]
        )
        left = Tuple(SNAPSHOT, {"EmpName": "John", "Amount": 3})
        combined = left.concat(other, combined_schema)
        assert combined.values() == ("John", 3, "P1")


class TestEqualityAndHashing:
    def test_equality_is_by_attribute_values(self):
        assert john() == Tuple.from_sequence(TEMPORAL, ["John", "Sales", 1, 8])

    def test_equality_ignores_attribute_order(self):
        reordered_schema = RelationSchema(
            ["Dept", "EmpName", "T1", "T2"],
            {a: TEMPORAL.domains[a] for a in TEMPORAL.attributes},
        )
        reordered = Tuple(
            reordered_schema, {"EmpName": "John", "Dept": "Sales", "T1": 1, "T2": 8}
        )
        assert john() == reordered
        assert hash(john()) == hash(reordered)

    def test_inequality_on_values(self):
        assert john(1, 8) != john(1, 9)

    def test_usable_in_sets(self):
        assert len({john(), john(), john(6, 11)}) == 2


class TestCaching:
    """value_part() and hash() are cached on first use (tuples are immutable)."""

    def test_value_part_is_cached_and_stable(self):
        tup = john()
        first = tup.value_part()
        assert first == ("John", "Sales")
        assert tup.value_part() is first

    def test_hash_is_cached_and_consistent_with_equality(self):
        tup = john()
        assert hash(tup) == hash(tup)
        permuted = RelationSchema.temporal([("Dept", STRING), ("EmpName", STRING)])
        twin = Tuple(permuted, {"Dept": "Sales", "EmpName": "John", "T1": 1, "T2": 8})
        assert tup == twin
        assert hash(tup) == hash(twin)

    def test_snapshot_value_part_covers_all_attributes(self):
        tup = Tuple(SNAPSHOT, {"EmpName": "John", "Amount": 5})
        assert tup.value_part() == ("John", 5)
