"""The columnar batch engine: identical results at every chunking.

The stratum's physical operators execute columnar ``ColumnBatch`` chunks by
default (see ``docs/architecture.md#columnar-execution``).  Because the
algebra is list-based, correctness is *sequence* identity, not multiset
identity — so the contract tested here is strict: for any join-shaped plan
and any batch size (including 1, sizes that straddle operator boundaries,
and sizes larger than the input), the batch engine must produce the
byte-identical tuple sequence of the tuple-at-a-time pipeline and of the
reference semantics, with the same per-operator row accounting and the
same control-tick cadence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.expressions import (
    AttributeRef,
    Comparison,
    ComparisonOperator,
    Literal,
    positional_guard,
)
from repro.core.operations import LiteralRelation, Selection
from repro.core.operations.base import EvaluationContext
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.core.tuples import Tuple
from repro.dbms.engine import ConventionalDBMS
from repro.faults import ExecutionControl
from repro.session import Session
from repro.stratum.columnar import BatchBuilder, ColumnBatch, DEFAULT_BATCH_SIZE
from repro.stratum.executor import StratumExecutor
from repro.options import (
    DEFAULT_BATCH_SIZE as OPTIONS_DEFAULT_BATCH_SIZE,
    ExecutionOptions,
)
from repro.workloads import employee_relation, project_relation

from .strategies import TEMPORAL_SCHEMA, join_shaped_plans

CONTEXT = EvaluationContext()

#: The swept chunkings: degenerate (1), boundary-straddling small sizes,
#: a mid size, and one larger than any generated input.
BATCH_SIZES = (1, 2, 7, 64, 4096)


def run_stratum(plan, batch_size):
    return StratumExecutor(ConventionalDBMS(), batch_size=batch_size).execute(plan)


def assert_list_identical(fast: Relation, reference: Relation):
    assert fast.schema.attributes == reference.schema.attributes
    assert list(fast.tuples) == list(reference.tuples)


class TestChunkingDifferential:
    """Every batch size produces the reference tuple sequence."""

    @settings(max_examples=60, deadline=None)
    @given(join_shaped_plans())
    def test_all_batch_sizes_match_reference(self, plan):
        reference = plan.evaluate(CONTEXT)
        for batch_size in BATCH_SIZES:
            assert_list_identical(run_stratum(plan, batch_size), reference)

    @settings(max_examples=40, deadline=None)
    @given(join_shaped_plans())
    def test_batch_and_tuple_modes_agree(self, plan):
        tuple_mode = run_stratum(plan, None)
        for batch_size in (1, 7, 4096):
            assert_list_identical(run_stratum(plan, batch_size), tuple_mode)


class TestAccountingParity:
    """Row counts and control ticks are chunking-independent."""

    def _session(self, batch_size):
        session = Session(options=ExecutionOptions(batch_size=batch_size))
        session.database.register("EMPLOYEE", employee_relation())
        session.database.register("PROJECT", project_relation())
        return session

    STATEMENT = (
        "SELECT DISTINCT EmpName FROM EMPLOYEE "
        "EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
        "ORDER BY EmpName COALESCE"
    )

    def test_explain_analyze_actuals_agree_across_chunkings(self):
        reference = self._session(None).explain(self.STATEMENT)
        expected = {line.path: line.actual_rows for line in reference.lines}
        for batch_size in (1, 7, 4096):
            report = self._session(batch_size).explain(self.STATEMENT)
            actuals = {line.path: line.actual_rows for line in report.lines}
            assert actuals == expected
            assert report.result_rows == reference.result_rows

    def test_explain_render_shows_the_batch_size(self):
        assert "batch size=7" in self._session(7).explain(self.STATEMENT).render()
        assert (
            "batch size=tuple-at-a-time"
            in self._session(None).explain(self.STATEMENT).render()
        )

    def test_plain_explain_shows_no_batch_size(self):
        report = self._session(7).explain(self.STATEMENT, analyze=False)
        assert report.batch_size is None
        assert "batch size" not in report.render()

    def test_tick_cadence_is_chunking_independent(self):
        rows = [("N%03d" % i, "Sales" if i % 3 else "Ads", 1, 5) for i in range(300)]
        plan = Selection(
            Comparison(ComparisonOperator.NE, AttributeRef("Dept"), Literal("Ads")),
            LiteralRelation(Relation.from_rows(TEMPORAL_SCHEMA, rows)),
        )

        class CountingControl(ExecutionControl):
            def __init__(self):
                super().__init__()
                self.ticks = 0

            def tick(self, point):
                self.ticks += 1
                super().tick(point)

        def ticks(batch_size):
            control = CountingControl()
            executor = StratumExecutor(
                ConventionalDBMS(), control=control, batch_size=batch_size
            )
            executor.execute(plan)
            return control.ticks

        reference = ticks(None)
        assert reference > 2  # 300 rows at interval 128: the loop really ticked
        for batch_size in (1, 7, 64, 4096):
            assert ticks(batch_size) == reference


class TestColumnBatch:
    """The container itself: construction, permutation normalization, rebuild."""

    SCHEMA = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)], name="C")

    def test_round_trips_tuples(self):
        tuples = [
            Tuple(self.SCHEMA, {"Name": "John", "Amount": 1}),
            Tuple(self.SCHEMA, {"Name": "Anna", "Amount": 2}),
        ]
        batch = ColumnBatch.from_tuples(self.SCHEMA, tuples)
        assert batch.length == 2
        assert batch.columns == [["John", "Anna"], [1, 2]]
        assert list(batch.rows()) == [("John", 1), ("Anna", 2)]
        assert batch.to_tuples() == tuples

    def test_normalizes_permuted_tuples_at_the_boundary(self):
        permuted = RelationSchema.snapshot(
            [("Amount", INTEGER), ("Name", STRING)], name="C"
        )
        batch = ColumnBatch.from_tuples(
            self.SCHEMA, [Tuple(permuted, {"Amount": 3, "Name": "Mia"})]
        )
        assert batch.columns == [["Mia"], [3]]
        (rebuilt,) = batch.to_tuples()
        assert rebuilt.schema.attributes == self.SCHEMA.attributes
        assert rebuilt["Name"] == "Mia" and rebuilt["Amount"] == 3

    def test_take_gathers_a_selection(self):
        batch = ColumnBatch(self.SCHEMA, [["a", "b", "c"], [1, 2, 3]], 3)
        taken = batch.take([0, 2])
        assert taken.columns == [["a", "c"], [1, 3]]
        assert taken.length == 2

    def test_builder_chunks_at_the_configured_size(self):
        builder = BatchBuilder(self.SCHEMA, 2)
        emitted = [b for row in [("a", 1), ("b", 2), ("c", 3)] if (b := builder.add(row))]
        assert [b.length for b in emitted] == [2]
        tail = builder.flush()
        assert tail is not None and tail.length == 1
        assert builder.flush() is None

    def test_trusted_tuples_equal_validated_tuples(self):
        validated = Tuple(self.SCHEMA, {"Name": "John", "Amount": 1})
        trusted = Tuple.trusted(self.SCHEMA, ("John", 1))
        assert trusted == validated
        assert hash(trusted) == hash(validated)
        assert trusted["Amount"] == 1

    def test_default_batch_size_constants_agree(self):
        # repro.options re-declares the constant to stay a leaf module.
        assert OPTIONS_DEFAULT_BATCH_SIZE == DEFAULT_BATCH_SIZE
        assert ExecutionOptions().batch_size == DEFAULT_BATCH_SIZE


class TestPermutationCache:
    """The positional guard recompiles once per distinct attribute order."""

    SCHEMA = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)], name="C")
    PERMUTED = RelationSchema.snapshot([("Amount", INTEGER), ("Name", STRING)], name="C")

    def test_recompile_runs_once_per_layout(self):
        expression = Comparison(
            ComparisonOperator.GT, AttributeRef("Amount"), Literal(1)
        )
        compiles = []

        def counting_compile(schema):
            compiles.append(schema.attributes)
            return expression.compile(schema)

        guarded = positional_guard(
            self.SCHEMA,
            expression.compile(self.SCHEMA),
            expression.evaluate,
            recompile=counting_compile,
        )
        aligned = Tuple(self.SCHEMA, {"Name": "John", "Amount": 1})
        permuted = [
            Tuple(self.PERMUTED, {"Amount": i, "Name": "Anna"}) for i in range(50)
        ]
        assert guarded(aligned) is False
        results = [guarded(tup) for tup in permuted]
        assert results == [i > 1 for i in range(50)]
        # 50 permuted tuples, one layout: exactly one recompilation.
        assert compiles == [("Amount", "Name")]

    def test_guard_without_recompiler_uses_the_fallback(self):
        expression = Comparison(
            ComparisonOperator.GT, AttributeRef("Amount"), Literal(1)
        )
        guarded = positional_guard(
            self.SCHEMA, expression.compile(self.SCHEMA), expression.evaluate
        )
        assert guarded(Tuple(self.PERMUTED, {"Amount": 5, "Name": "Mia"})) is True


class TestBatchSizeValidation:
    def test_executor_rejects_nonpositive_sizes_via_options(self):
        with pytest.raises(ValueError):
            ExecutionOptions(batch_size=0)
        with pytest.raises(ValueError):
            ExecutionOptions(batch_size=-3)
