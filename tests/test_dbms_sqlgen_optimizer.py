"""Tests for SQL generation and the DBMS's own optimizer."""

import pytest

from repro.core.exceptions import SQLGenerationError
from repro.core.expressions import Comparison, ComparisonOperator, attribute, count, equals
from repro.core.operations import (
    Aggregation,
    BaseRelation,
    CartesianProduct,
    Coalescing,
    Difference,
    DuplicateElimination,
    Join,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDuplicateElimination,
    Union,
    UnionAll,
)
from repro.core.order_spec import OrderSpec
from repro.dbms.optimizer import ConventionalOptimizer
from repro.dbms.sqlgen import to_sql
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation


def employee_scan():
    return BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)


def project_scan():
    return BaseRelation("PROJECT", PROJECT_SCHEMA)


class TestSQLGeneration:
    def test_scan(self):
        assert to_sql(employee_scan()) == "SELECT * FROM EMPLOYEE"

    def test_selection(self):
        sql = to_sql(Selection(equals("Dept", "Sales"), employee_scan()))
        assert "WHERE (Dept = 'Sales')" in sql

    def test_projection(self):
        sql = to_sql(Projection(["EmpName", "Dept"], employee_scan()))
        assert sql.startswith("SELECT EmpName, Dept FROM")

    def test_sort(self):
        sql = to_sql(Sort(OrderSpec.of("EmpName", "T1 DESC"), employee_scan()))
        assert sql.endswith("ORDER BY EmpName ASC, T1 DESC")

    def test_duplicate_elimination_on_snapshot_input(self):
        sql = to_sql(DuplicateElimination(Projection(["EmpName", "Dept"], employee_scan())))
        assert "SELECT DISTINCT *" in sql

    def test_duplicate_elimination_on_temporal_input_renames_time(self):
        sql = to_sql(DuplicateElimination(employee_scan()))
        assert '"1.T1"' in sql and '"1.T2"' in sql

    def test_aggregation(self):
        sql = to_sql(Aggregation(["Dept"], [count(alias="n")], employee_scan()))
        assert "GROUP BY Dept" in sql
        assert "COUNT(*) AS n" in sql

    def test_join(self):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        sql = to_sql(Join(predicate, employee_scan(), project_scan()))
        assert "JOIN" in sql and "ON" in sql

    def test_product_difference_union(self):
        assert "CROSS JOIN" in to_sql(CartesianProduct(employee_scan(), project_scan()))
        assert "EXCEPT ALL" in to_sql(
            Difference(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        )
        assert "UNION ALL" in to_sql(
            UnionAll(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        )

    def test_pretty_output_breaks_lines(self):
        sql = to_sql(Selection(equals("Dept", "Sales"), employee_scan()), pretty=True)
        assert "\n" in sql

    def test_temporal_operations_cannot_be_rendered(self):
        with pytest.raises(SQLGenerationError):
            to_sql(TemporalDuplicateElimination(employee_scan()))
        with pytest.raises(SQLGenerationError):
            to_sql(Coalescing(employee_scan()))

    def test_multiset_union_cannot_be_rendered(self):
        plan = Union(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        with pytest.raises(SQLGenerationError):
            to_sql(plan)

    def test_literal_relations_cannot_be_rendered(self):
        with pytest.raises(SQLGenerationError):
            to_sql(LiteralRelation(employee_relation()))


class TestConventionalOptimizer:
    def test_pushes_selection_below_projection(self):
        plan = Selection(equals("Dept", "Sales"), Projection(["EmpName", "Dept"], employee_scan()))
        optimized = ConventionalOptimizer().optimize(plan)
        assert isinstance(optimized, Projection)
        assert isinstance(optimized.child, Selection)

    def test_merges_projection_cascades(self):
        plan = Projection(["EmpName"], Projection(["EmpName", "Dept"], employee_scan()))
        optimized = ConventionalOptimizer().optimize(plan)
        assert isinstance(optimized, Projection)
        assert isinstance(optimized.child, BaseRelation)

    def test_removes_redundant_duplicate_elimination(self):
        plan = DuplicateElimination(
            DuplicateElimination(Projection(["EmpName", "Dept"], employee_scan()))
        )
        optimized = ConventionalOptimizer().optimize(plan)
        labels = [type(node).__name__ for _, node in optimized.locations()]
        assert labels.count("DuplicateElimination") == 1

    def test_collapses_redundant_sorts(self):
        plan = Sort(
            OrderSpec.ascending("EmpName", "T1"),
            Sort(OrderSpec.ascending("EmpName"), employee_scan()),
        )
        optimized = ConventionalOptimizer().optimize(plan)
        labels = [type(node).__name__ for _, node in optimized.locations()]
        assert labels.count("Sort") == 1

    def test_reaches_a_fixpoint(self):
        plan = Selection(
            equals("Dept", "Sales"),
            Projection(["EmpName", "Dept"], Projection(["EmpName", "Dept", "T1", "T2"], employee_scan())),
        )
        optimizer = ConventionalOptimizer()
        once = optimizer.optimize(plan)
        twice = optimizer.optimize(once)
        assert once == twice

    def test_leaves_temporal_operations_untouched(self):
        plan = Coalescing(TemporalDuplicateElimination(employee_scan()))
        assert ConventionalOptimizer().optimize(plan) == plan

    def test_custom_rule_set(self):
        optimizer = ConventionalOptimizer(rules=[])
        plan = Selection(equals("Dept", "Sales"), Projection(["EmpName", "Dept"], employee_scan()))
        assert optimizer.optimize(plan) == plan
