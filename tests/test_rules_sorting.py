"""Unit tests for the sorting rules S1–S3 and the sort push-down rules."""

from repro.core.equivalence import list_equivalent, multiset_equivalent
from repro.core.expressions import equals
from repro.core.operations import (
    Coalescing,
    Difference,
    DuplicateElimination,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.core.rules import rules_by_name

from .strategies import NARROW_TEMPORAL_SCHEMA, SNAPSHOT_SCHEMA

CONTEXT = EvaluationContext()
RULES = rules_by_name()


def run(op):
    return op.evaluate(CONTEXT)


def trel(*rows):
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


def srel(*rows):
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


class TestS1:
    def test_removes_satisfied_sort(self):
        relation = trel(("b", 5, 6), ("a", 1, 2)).sorted_by(OrderSpec.ascending("Name", "T1"))
        plan = Sort(OrderSpec.ascending("Name"), LiteralRelation(relation))
        application = RULES["S1"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_the_prefix_relationship(self):
        relation = trel(("b", 5, 6), ("a", 1, 2)).sorted_by(OrderSpec.ascending("T1"))
        plan = Sort(OrderSpec.ascending("Name"), LiteralRelation(relation))
        assert RULES["S1"].apply(plan) is None

    def test_removes_sort_above_identical_sort(self):
        plan = Sort(
            OrderSpec.ascending("Name"),
            Sort(OrderSpec.ascending("Name", "T1"), LiteralRelation(trel(("b", 5, 6), ("a", 1, 2)))),
        )
        application = RULES["S1"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))


class TestS2:
    def test_drops_any_sort_as_multiset(self):
        plan = Sort(OrderSpec.ascending("Name"), LiteralRelation(trel(("b", 5, 6), ("a", 1, 2))))
        application = RULES["S2"].apply(plan)
        assert application is not None
        assert multiset_equivalent(run(plan), run(application.replacement))
        assert not list_equivalent(run(plan), run(application.replacement))


class TestS3:
    def test_collapses_sorts_when_inner_is_prefix_of_outer(self):
        inner = Sort(OrderSpec.ascending("Name"), LiteralRelation(trel(("b", 5, 6), ("a", 1, 2), ("a", 3, 4))))
        plan = Sort(OrderSpec.ascending("Name", "T1"), inner)
        application = RULES["S3"].apply(plan)
        assert application is not None
        assert isinstance(application.replacement, Sort)
        assert application.replacement.child == inner.child
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_prefix_relationship(self):
        inner = Sort(OrderSpec.ascending("T1"), LiteralRelation(trel(("b", 5, 6))))
        plan = Sort(OrderSpec.ascending("Name"), inner)
        assert RULES["S3"].apply(plan) is None


class TestSortPushDown:
    def test_below_selection(self):
        plan = Sort(
            OrderSpec.ascending("Name"),
            Selection(equals("Name", "a"), LiteralRelation(trel(("b", 1, 2), ("a", 3, 4)))),
        )
        application = RULES["S-push-σ"].apply(plan)
        assert application is not None
        assert isinstance(application.replacement, Selection)
        assert list_equivalent(run(plan), run(application.replacement))

    def test_below_projection(self):
        relation = trel(("b", 1, 2), ("a", 3, 4))
        plan = Sort(
            OrderSpec.ascending("Name"),
            Projection(["Name", "T1", "T2"], LiteralRelation(relation)),
        )
        application = RULES["S-push-π"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_below_projection_requires_preserved_attributes(self):
        relation = trel(("b", 1, 2), ("a", 3, 4))
        plan = Sort(OrderSpec.ascending("T1"), Projection(["Name"], LiteralRelation(relation)))
        assert RULES["S-push-π"].apply(plan) is None

    def test_below_duplicate_elimination(self):
        relation = srel(("b", 1), ("a", 2), ("b", 1))
        plan = Sort(OrderSpec.ascending("Name"), DuplicateElimination(LiteralRelation(relation)))
        application = RULES["S-push-rdup"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_below_coalescing(self):
        relation = trel(("b", 1, 3), ("a", 4, 5), ("b", 3, 5))
        plan = Sort(OrderSpec.ascending("Name"), Coalescing(LiteralRelation(relation)))
        application = RULES["S-push-coal"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_below_coalescing_blocked_for_time_keys(self):
        relation = trel(("b", 1, 3), ("a", 4, 5))
        plan = Sort(OrderSpec.ascending("T1"), Coalescing(LiteralRelation(relation)))
        assert RULES["S-push-coal"].apply(plan) is None

    def test_below_difference(self):
        left = srel(("b", 1), ("a", 2), ("c", 3))
        right = srel(("a", 2))
        plan = Sort(
            OrderSpec.ascending("Name"),
            Difference(LiteralRelation(left), LiteralRelation(right)),
        )
        application = RULES["S-push-diff"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_below_temporal_difference(self, r3, r1):
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            TemporalDifference(LiteralRelation(r3), LiteralRelation(r1)),
        )
        application = RULES["S-push-diffT"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))
