"""Hypothesis strategies shared by the property-based tests.

The strategies generate *small* relations over fixed schemas: property-based
tests of the algebra and the transformation rules only need a handful of
tuples to exercise every interesting interaction (duplicates, adjacent
periods, overlapping periods, empty relations), and small sizes keep the
quadratic reference implementations fast.
"""

from __future__ import annotations

from typing import List, Tuple as PyTuple

from hypothesis import strategies as st

from repro.core.order_spec import OrderSpec, SortKey, SortDirection
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING

#: Temporal schema used by most property tests: (Name, Dept, T1, T2).
TEMPORAL_SCHEMA = RelationSchema.temporal(
    [("Name", STRING), ("Dept", STRING)], name="R"
)

#: A second, union-compatible temporal schema (different relation name only).
TEMPORAL_SCHEMA_2 = RelationSchema.temporal(
    [("Name", STRING), ("Dept", STRING)], name="S"
)

#: Narrow temporal schema (Name, T1, T2), as in Figure 3.
NARROW_TEMPORAL_SCHEMA = RelationSchema.temporal([("Name", STRING)], name="N")

#: Snapshot (non-temporal) schema used by conventional-operation tests.
SNAPSHOT_SCHEMA = RelationSchema.snapshot(
    [("Name", STRING), ("Amount", INTEGER)], name="C"
)

#: Small alphabets so that duplicates and value-equivalent tuples are common.
NAMES = ("John", "Anna", "Mia")
DEPARTMENTS = ("Sales", "Ads")
AMOUNTS = (1, 2, 3)


@st.composite
def periods(draw, max_time: int = 10) -> PyTuple[int, int]:
    """A closed-open period within [1, max_time+1)."""
    start = draw(st.integers(min_value=1, max_value=max_time))
    length = draw(st.integers(min_value=1, max_value=4))
    return start, min(max_time + 1, start + length) if start + length > start else start + 1


@st.composite
def temporal_rows(draw) -> PyTuple[str, str, int, int]:
    name = draw(st.sampled_from(NAMES))
    dept = draw(st.sampled_from(DEPARTMENTS))
    start, end = draw(periods())
    return (name, dept, start, end)


@st.composite
def narrow_temporal_rows(draw) -> PyTuple[str, int, int]:
    name = draw(st.sampled_from(NAMES))
    start, end = draw(periods())
    return (name, start, end)


@st.composite
def snapshot_rows(draw) -> PyTuple[str, int]:
    return (draw(st.sampled_from(NAMES)), draw(st.sampled_from(AMOUNTS)))


@st.composite
def temporal_relations(draw, schema: RelationSchema = TEMPORAL_SCHEMA, max_size: int = 8) -> Relation:
    """A small temporal relation over ``schema`` (with duplicates and overlaps likely)."""
    rows = draw(st.lists(temporal_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(schema, rows)


@st.composite
def narrow_temporal_relations(draw, max_size: int = 8) -> Relation:
    """A small temporal relation over the (Name, T1, T2) schema."""
    rows = draw(st.lists(narrow_temporal_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


@st.composite
def snapshot_relations(draw, max_size: int = 8) -> Relation:
    """A small snapshot relation over the (Name, Amount) schema."""
    rows = draw(st.lists(snapshot_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


@st.composite
def value_columns(draw, max_size: int = 40) -> List[int]:
    """A non-empty multiset of small integers — one attribute's values.

    Drawn from a narrow alphabet so heavy duplication (the regime histograms
    summarise) is common; used by the histogram property tests.
    """
    return draw(
        st.lists(st.integers(min_value=-5, max_value=20), min_size=1, max_size=max_size)
    )


@st.composite
def period_columns(draw, max_size: int = 30, max_time: int = 20) -> List[PyTuple[int, int]]:
    """A non-empty multiset of closed-open periods for interval histograms."""
    return draw(st.lists(periods(max_time=max_time), min_size=1, max_size=max_size))


@st.composite
def profiled_relation_pairs(draw, max_size: int = 8):
    """Two temporal relations (the second non-empty) plus an estimator over them.

    The estimator is built from the relations' own profiles, so estimates are
    fully data-driven; the property tests check the output-cardinality bounds
    the cost model's branch-and-bound relies on.
    """
    from repro.stats import CardinalityEstimator

    left = draw(temporal_relations(max_size=max_size))
    right = draw(temporal_relations(schema=TEMPORAL_SCHEMA_2, max_size=max_size))
    estimator = CardinalityEstimator.from_relations({"R": left, "S": right})
    return left, right, estimator


@st.composite
def order_specs(draw, attributes: PyTuple[str, ...] = ("Name", "Dept")) -> OrderSpec:
    """A sort specification over a subset of ``attributes``."""
    chosen: List[str] = draw(
        st.lists(st.sampled_from(list(attributes)), unique=True, min_size=0, max_size=len(attributes))
    )
    keys = []
    for attribute in chosen:
        direction = draw(st.sampled_from([SortDirection.ASC, SortDirection.DESC]))
        keys.append(SortKey(attribute, direction))
    return OrderSpec(keys)
