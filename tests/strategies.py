"""Hypothesis strategies shared by the property-based tests.

The strategies generate *small* relations over fixed schemas: property-based
tests of the algebra and the transformation rules only need a handful of
tuples to exercise every interesting interaction (duplicates, adjacent
periods, overlapping periods, empty relations), and small sizes keep the
quadratic reference implementations fast.
"""

from __future__ import annotations

from typing import List, Tuple as PyTuple

from hypothesis import strategies as st

from repro.core.expressions import (
    And,
    AttributeRef,
    Comparison,
    ComparisonOperator,
    Literal,
)
from repro.core.operations import (
    CartesianProduct,
    Join,
    LiteralRelation,
    Operation,
    Projection,
    Selection,
    Sort,
    TemporalCartesianProduct,
    TemporalJoin,
)
from repro.core.order_spec import OrderSpec, SortKey, SortDirection
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING

#: Temporal schema used by most property tests: (Name, Dept, T1, T2).
TEMPORAL_SCHEMA = RelationSchema.temporal(
    [("Name", STRING), ("Dept", STRING)], name="R"
)

#: A second, union-compatible temporal schema (different relation name only).
TEMPORAL_SCHEMA_2 = RelationSchema.temporal(
    [("Name", STRING), ("Dept", STRING)], name="S"
)

#: Narrow temporal schema (Name, T1, T2), as in Figure 3.
NARROW_TEMPORAL_SCHEMA = RelationSchema.temporal([("Name", STRING)], name="N")

#: Snapshot (non-temporal) schema used by conventional-operation tests.
SNAPSHOT_SCHEMA = RelationSchema.snapshot(
    [("Name", STRING), ("Amount", INTEGER)], name="C"
)

#: Small alphabets so that duplicates and value-equivalent tuples are common.
NAMES = ("John", "Anna", "Mia")
DEPARTMENTS = ("Sales", "Ads")
AMOUNTS = (1, 2, 3)


@st.composite
def periods(draw, max_time: int = 10) -> PyTuple[int, int]:
    """A closed-open period within [1, max_time+1)."""
    start = draw(st.integers(min_value=1, max_value=max_time))
    length = draw(st.integers(min_value=1, max_value=4))
    return start, min(max_time + 1, start + length) if start + length > start else start + 1


@st.composite
def temporal_rows(draw) -> PyTuple[str, str, int, int]:
    name = draw(st.sampled_from(NAMES))
    dept = draw(st.sampled_from(DEPARTMENTS))
    start, end = draw(periods())
    return (name, dept, start, end)


@st.composite
def narrow_temporal_rows(draw) -> PyTuple[str, int, int]:
    name = draw(st.sampled_from(NAMES))
    start, end = draw(periods())
    return (name, start, end)


@st.composite
def snapshot_rows(draw) -> PyTuple[str, int]:
    return (draw(st.sampled_from(NAMES)), draw(st.sampled_from(AMOUNTS)))


@st.composite
def temporal_relations(draw, schema: RelationSchema = TEMPORAL_SCHEMA, max_size: int = 8) -> Relation:
    """A small temporal relation over ``schema`` (with duplicates and overlaps likely)."""
    rows = draw(st.lists(temporal_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(schema, rows)


@st.composite
def narrow_temporal_relations(draw, max_size: int = 8) -> Relation:
    """A small temporal relation over the (Name, T1, T2) schema."""
    rows = draw(st.lists(narrow_temporal_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


@st.composite
def snapshot_relations(draw, max_size: int = 8) -> Relation:
    """A small snapshot relation over the (Name, Amount) schema."""
    rows = draw(st.lists(snapshot_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


@st.composite
def value_columns(draw, max_size: int = 40) -> List[int]:
    """A non-empty multiset of small integers — one attribute's values.

    Drawn from a narrow alphabet so heavy duplication (the regime histograms
    summarise) is common; used by the histogram property tests.
    """
    return draw(
        st.lists(st.integers(min_value=-5, max_value=20), min_size=1, max_size=max_size)
    )


@st.composite
def period_columns(draw, max_size: int = 30, max_time: int = 20) -> List[PyTuple[int, int]]:
    """A non-empty multiset of closed-open periods for interval histograms."""
    return draw(st.lists(periods(max_time=max_time), min_size=1, max_size=max_size))


@st.composite
def profiled_relation_pairs(draw, max_size: int = 8):
    """Two temporal relations (the second non-empty) plus an estimator over them.

    The estimator is built from the relations' own profiles, so estimates are
    fully data-driven; the property tests check the output-cardinality bounds
    the cost model's branch-and-bound relies on.
    """
    from repro.stats import CardinalityEstimator

    left = draw(temporal_relations(max_size=max_size))
    right = draw(temporal_relations(schema=TEMPORAL_SCHEMA_2, max_size=max_size))
    estimator = CardinalityEstimator.from_relations({"R": left, "S": right})
    return left, right, estimator


#: Right-hand schema for join-shaped plans: ``Name`` clashes with the left
#: schema (so the product renames it to ``2.Name``), ``Code`` does not.
JOIN_RIGHT_SCHEMA = RelationSchema.temporal(
    [("Name", STRING), ("Code", STRING)], name="J"
)

CODES = ("X", "Y", "Z")


@st.composite
def join_right_rows(draw) -> PyTuple[str, str, int, int]:
    name = draw(st.sampled_from(NAMES))
    code = draw(st.sampled_from(CODES))
    start, end = draw(periods())
    return (name, code, start, end)


@st.composite
def join_right_relations(draw, max_size: int = 8) -> Relation:
    """A small temporal relation over the (Name, Code, T1, T2) schema."""
    rows = draw(st.lists(join_right_rows(), min_size=0, max_size=max_size))
    return Relation.from_rows(JOIN_RIGHT_SCHEMA, rows)


def _equi_conjunct() -> Comparison:
    return Comparison(ComparisonOperator.EQ, AttributeRef("1.Name"), AttributeRef("2.Name"))


def _overlap_conjuncts() -> PyTuple[Comparison, Comparison]:
    return (
        Comparison(ComparisonOperator.LT, AttributeRef("1.T1"), AttributeRef("2.T2")),
        Comparison(ComparisonOperator.LT, AttributeRef("2.T1"), AttributeRef("1.T2")),
    )


@st.composite
def join_predicates(draw, temporal: bool):
    """A predicate over the product of TEMPORAL_SCHEMA and JOIN_RIGHT_SCHEMA.

    Drawn so that every physical join algorithm comes up: with/without an
    equi-conjunct (hash vs. not), with/without the explicit overlap pair
    (interval join on conventional products), and with one-sided or fresh
    ``T1``/``T2`` residual conjuncts.
    """
    conjuncts = []
    if draw(st.booleans()):
        conjuncts.append(_equi_conjunct())
    if not temporal and draw(st.booleans()):
        conjuncts.extend(_overlap_conjuncts())
    if draw(st.booleans()):
        conjuncts.append(
            Comparison(
                ComparisonOperator.EQ, AttributeRef("Dept"), Literal(draw(st.sampled_from(DEPARTMENTS)))
            )
        )
    if draw(st.booleans()):
        conjuncts.append(
            Comparison(
                ComparisonOperator.NE, AttributeRef("Code"), Literal(draw(st.sampled_from(CODES)))
            )
        )
    if temporal and draw(st.booleans()):
        # A conjunct over the fresh (intersection) period attributes: always
        # residual, never a join key.
        conjuncts.append(
            Comparison(ComparisonOperator.GT, AttributeRef("T2"), AttributeRef("T1"))
        )
    if not conjuncts:
        conjuncts.append(Literal(True))
    return conjuncts[0] if len(conjuncts) == 1 else And(*conjuncts)


@st.composite
def join_shaped_plans(draw, max_size: int = 6) -> Operation:
    """A small join-shaped plan over literal relations.

    Covers the shapes the stratum's physical layer lowers: the ``Join`` and
    ``TemporalJoin`` idioms, selections directly over (temporal) Cartesian
    products, and bare products — optionally wrapped in a projection, a
    selection, and/or a sort so that streaming operators stack on top.
    """
    left = LiteralRelation(draw(temporal_relations(max_size=max_size)))
    right = LiteralRelation(draw(join_right_relations(max_size=max_size)))
    shape = draw(
        st.sampled_from(
            ["join", "temporal-join", "select-product", "select-temporal-product", "product", "temporal-product"]
        )
    )
    temporal = shape in ("temporal-join", "select-temporal-product", "temporal-product")
    predicate = draw(join_predicates(temporal=temporal))
    if shape == "join":
        plan: Operation = Join(predicate, left, right)
    elif shape == "temporal-join":
        plan = TemporalJoin(predicate, left, right)
    elif shape == "select-product":
        plan = Selection(predicate, CartesianProduct(left, right))
    elif shape == "select-temporal-product":
        plan = Selection(predicate, TemporalCartesianProduct(left, right))
    elif shape == "product":
        plan = CartesianProduct(left, right)
    else:
        plan = TemporalCartesianProduct(left, right)
    if draw(st.booleans()):
        plan = Selection(
            Comparison(
                ComparisonOperator.NE, AttributeRef("Dept"), Literal(draw(st.sampled_from(DEPARTMENTS)))
            ),
            plan,
        )
    if draw(st.booleans()):
        plan = Projection(["1.Name", "Dept", "Code"], plan)
        if draw(st.booleans()):
            plan = Sort(OrderSpec.ascending("1.Name"), plan)
    elif draw(st.booleans()):
        plan = Sort(OrderSpec.ascending("Dept"), plan)
    return plan


@st.composite
def order_specs(draw, attributes: PyTuple[str, ...] = ("Name", "Dept")) -> OrderSpec:
    """A sort specification over a subset of ``attributes``."""
    chosen: List[str] = draw(
        st.lists(st.sampled_from(list(attributes)), unique=True, min_size=0, max_size=len(attributes))
    )
    keys = []
    for attribute in chosen:
        direction = draw(st.sampled_from([SortDirection.ASC, SortDirection.DESC]))
        keys.append(SortKey(attribute, direction))
    return OrderSpec(keys)
