"""Tests for rule applicability (Definition 5.1 and the Figure 5 conditions)."""

from repro.core.applicability import (
    is_rule_applicable,
    results_acceptable,
    rule_application_allowed,
)
from repro.core.equivalence import EquivalenceType
from repro.core.operations import (
    BaseRelation,
    Coalescing,
    Projection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.properties import OperationProperties, annotate
from repro.core.query import QueryResultSpec
from repro.core.relation import Relation
from repro.core.rules import rules_by_name
from repro.workloads import (
    EMPLOYEE_NAME_SCHEMA,
    EMPLOYEE_SCHEMA,
    PROJECT_SCHEMA,
)

RULES = rules_by_name()

FREE = OperationProperties(False, False, False)
ORDERED = OperationProperties(True, False, False)
DUPLICATES = OperationProperties(False, True, False)
PERIODS = OperationProperties(False, False, True)
ALL_SET = OperationProperties(True, True, True)


class TestFigure5Conditions:
    def test_list_rules_always_allowed(self):
        assert rule_application_allowed(EquivalenceType.LIST, [ALL_SET])

    def test_multiset_rules_need_no_order_requirement(self):
        assert rule_application_allowed(EquivalenceType.MULTISET, [FREE, DUPLICATES])
        assert not rule_application_allowed(EquivalenceType.MULTISET, [FREE, ORDERED])

    def test_set_rules_need_no_order_and_no_duplicates(self):
        assert rule_application_allowed(EquivalenceType.SET, [FREE])
        assert not rule_application_allowed(EquivalenceType.SET, [DUPLICATES])
        assert not rule_application_allowed(EquivalenceType.SET, [ORDERED])

    def test_snapshot_list_rules_need_no_period_preservation(self):
        assert rule_application_allowed(EquivalenceType.SNAPSHOT_LIST, [ORDERED, DUPLICATES])
        assert not rule_application_allowed(EquivalenceType.SNAPSHOT_LIST, [PERIODS])

    def test_snapshot_multiset_rules(self):
        assert rule_application_allowed(EquivalenceType.SNAPSHOT_MULTISET, [DUPLICATES])
        assert not rule_application_allowed(EquivalenceType.SNAPSHOT_MULTISET, [ORDERED])
        assert not rule_application_allowed(EquivalenceType.SNAPSHOT_MULTISET, [PERIODS])

    def test_snapshot_set_rules_need_everything_cleared(self):
        assert rule_application_allowed(EquivalenceType.SNAPSHOT_SET, [FREE, FREE])
        for blocked in (ORDERED, DUPLICATES, PERIODS):
            assert not rule_application_allowed(EquivalenceType.SNAPSHOT_SET, [blocked])

    def test_empty_involved_list_is_allowed(self):
        for equivalence in EquivalenceType:
            assert rule_application_allowed(equivalence, [])


def paper_plan():
    employee = Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
    project = Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))
    difference = TemporalDifference(TemporalDuplicateElimination(employee), project)
    return TransferToStratum(
        Sort(OrderSpec.ascending("EmpName"), Coalescing(TemporalDuplicateElimination(difference)))
    )


LIST_QUERY = QueryResultSpec.list(OrderSpec.ascending("EmpName"), distinct=True)


class TestIsRuleApplicable:
    def test_d2_applicable_at_the_outer_rdupt(self):
        """The Section 6 walk-through removes the outer rdupT with D2."""
        plan = paper_plan()
        # Outer rdupT sits below sort and coalT: path (0, 0, 0).
        application = is_rule_applicable(plan, (0, 0, 0), RULES["D2"], LIST_QUERY)
        assert application is not None

    def test_d4_not_applicable_where_periods_matter(self):
        plan = paper_plan()
        # At the outer rdupT, PeriodPreserving holds for the operation itself
        # (it sits above the coalescing region boundary? no — it is below
        # coalT, so periods are free) but DuplicatesRelevant/OrderRequired do
        # not block it either; D4 is allowed there.  At the *inner* rdupT the
        # left argument of the difference must stay duplicate free, so the
        # ≡SS rule D4 must be rejected.
        inner_path = (0, 0, 0, 0, 0)
        application = is_rule_applicable(plan, inner_path, RULES["D4"], LIST_QUERY)
        assert application is None

    def test_s2_not_applicable_at_the_outermost_sort_of_a_list_query(self):
        plan = paper_plan()
        application = is_rule_applicable(plan, (0,), RULES["S2"], LIST_QUERY)
        assert application is None

    def test_s2_applicable_for_multiset_queries(self):
        plan = paper_plan()
        application = is_rule_applicable(plan, (0,), RULES["S2"], QueryResultSpec.multiset())
        assert application is not None

    def test_c10_applicable_below_the_coalescing(self):
        plan = paper_plan()
        # First remove the outer rdupT as the walk-through does.
        d2 = is_rule_applicable(plan, (0, 0, 0), RULES["D2"], LIST_QUERY)
        plan2 = plan.replace_at((0, 0, 0), d2.replacement)
        # Now coalT sits directly above the temporal difference at (0, 0).
        application = is_rule_applicable(plan2, (0, 0), RULES["C10"], LIST_QUERY)
        assert application is not None

    def test_syntactic_mismatch_returns_none(self):
        plan = paper_plan()
        assert is_rule_applicable(plan, (), RULES["C10"], LIST_QUERY) is None


class TestDefinition51:
    def rel(self, *rows, order=None):
        return Relation.from_rows(EMPLOYEE_NAME_SCHEMA, rows, order=order)

    def test_set_query_accepts_set_equivalent_results(self):
        query = QueryResultSpec.set()
        a = self.rel(("a", 1, 2), ("a", 1, 2))
        b = self.rel(("a", 1, 2))
        assert results_acceptable(a, b, query)

    def test_multiset_query_rejects_changed_duplicates(self):
        query = QueryResultSpec.multiset()
        a = self.rel(("a", 1, 2), ("a", 1, 2))
        b = self.rel(("a", 1, 2))
        assert not results_acceptable(a, b, query)
        assert results_acceptable(a, self.rel(("a", 1, 2), ("a", 1, 2)), query)

    def test_list_query_compares_only_order_by_attributes(self):
        query = QueryResultSpec.list(OrderSpec.ascending("EmpName"))
        a = self.rel(("a", 1, 2), ("b", 3, 4))
        b = self.rel(("a", 9, 10), ("b", 3, 4))
        assert results_acceptable(a, b, query)
        assert not results_acceptable(a, self.rel(("b", 3, 4), ("a", 1, 2)), query)

    def test_snapshot_equivalent_results_are_not_acceptable(self):
        """Definition 5.1: a query must preserve periods faithfully."""
        query = QueryResultSpec.multiset()
        a = self.rel(("a", 1, 5))
        b = self.rel(("a", 1, 3), ("a", 3, 5))
        assert not results_acceptable(a, b, query)
