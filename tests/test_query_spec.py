"""Tests for the query result specification (Definition 5.1 inputs)."""

from repro.core.equivalence import EquivalenceType
from repro.core.order_spec import OrderSpec
from repro.core.query import QueryResultSpec, ResultKind


class TestResultKind:
    def test_plain_query_is_a_multiset(self):
        assert QueryResultSpec.multiset().kind is ResultKind.MULTISET

    def test_distinct_query_is_a_set(self):
        assert QueryResultSpec.set().kind is ResultKind.SET

    def test_order_by_query_is_a_list(self):
        spec = QueryResultSpec.list(OrderSpec.ascending("A"))
        assert spec.kind is ResultKind.LIST

    def test_order_by_wins_over_distinct(self):
        spec = QueryResultSpec.list(OrderSpec.ascending("A"), distinct=True)
        assert spec.kind is ResultKind.LIST


class TestRequiredEquivalence:
    def test_multiset(self):
        assert QueryResultSpec.multiset().required_equivalence is EquivalenceType.MULTISET

    def test_set(self):
        assert QueryResultSpec.set().required_equivalence is EquivalenceType.SET

    def test_list(self):
        spec = QueryResultSpec.list(OrderSpec.ascending("A"))
        assert spec.required_equivalence is EquivalenceType.LIST


class TestPresentation:
    def test_str_mentions_clauses(self):
        spec = QueryResultSpec(distinct=True, order_by=OrderSpec.ascending("A"), coalesced=True)
        rendered = str(spec)
        assert "DISTINCT" in rendered and "ORDER BY" in rendered and "COALESCED" in rendered

    def test_str_for_plain_query(self):
        assert "multiset" in str(QueryResultSpec.multiset())
