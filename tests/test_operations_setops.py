"""Tests for union ALL, multiset union, temporal union, and the differences."""

import pytest
from hypothesis import given

from repro.core.exceptions import SchemaError
from repro.core.operations import (
    Difference,
    LiteralRelation,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    Union,
    UnionAll,
)
from repro.core.operations.base import EvaluationContext
from repro.core.relation import Relation
from repro.core.schema import RelationSchema, STRING

from .strategies import (
    NARROW_TEMPORAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    narrow_temporal_relations,
    snapshot_relations,
)

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


def srel(*rows):
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


def trel(*rows):
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


class TestUnionAll:
    def test_concatenates(self):
        result = run(UnionAll(LiteralRelation(srel(("a", 1))), LiteralRelation(srel(("b", 2)))))
        assert [tup["Name"] for tup in result] == ["a", "b"]

    def test_generates_duplicates(self):
        result = run(UnionAll(LiteralRelation(srel(("a", 1))), LiteralRelation(srel(("a", 1)))))
        assert result.has_duplicates()

    def test_requires_union_compatibility(self):
        incompatible = RelationSchema.snapshot([("Other", STRING)])
        other = Relation.from_rows(incompatible, [("x",)])
        with pytest.raises(SchemaError):
            run(UnionAll(LiteralRelation(srel(("a", 1))), LiteralRelation(other)))

    @given(snapshot_relations(), snapshot_relations())
    def test_cardinality_is_the_sum(self, left, right):
        result = run(UnionAll(LiteralRelation(left), LiteralRelation(right)))
        assert result.cardinality == left.cardinality + right.cardinality


class TestMultisetUnion:
    def test_takes_maximum_of_counts(self):
        left = srel(("a", 1), ("a", 1), ("b", 2))
        right = srel(("a", 1), ("c", 3))
        result = run(Union(LiteralRelation(left), LiteralRelation(right)))
        counts = result.as_multiset()
        values = {tuple(tup.values()): count for tup, count in counts.items()}
        assert values == {("a", 1): 2, ("b", 2): 1, ("c", 3): 1}

    def test_retains_duplicate_freedom(self):
        left = srel(("a", 1), ("b", 2))
        right = srel(("b", 2), ("c", 3))
        result = run(Union(LiteralRelation(left), LiteralRelation(right)))
        assert not result.has_duplicates()

    @given(snapshot_relations(), snapshot_relations())
    def test_count_is_max_of_argument_counts(self, left, right):
        result = run(Union(LiteralRelation(left), LiteralRelation(right)))
        result_counts = result.as_multiset()
        left_counts, right_counts = left.as_multiset(), right.as_multiset()
        for tup in set(left_counts) | set(right_counts):
            assert result_counts[tup] == max(left_counts[tup], right_counts[tup])

    @given(snapshot_relations(), snapshot_relations())
    def test_table1_cardinality_bounds(self, left, right):
        result = run(Union(LiteralRelation(left), LiteralRelation(right)))
        assert result.cardinality >= max(left.cardinality, right.cardinality)
        assert result.cardinality <= left.cardinality + right.cardinality


class TestTemporalUnion:
    def test_left_tuples_survive_unchanged(self):
        left = trel(("a", 1, 5))
        right = trel(("a", 3, 8))
        result = run(TemporalUnion(LiteralRelation(left), LiteralRelation(right)))
        periods = [(tup["Name"], tup["T1"], tup["T2"]) for tup in result]
        assert periods == [("a", 1, 5), ("a", 5, 8)]

    def test_disjoint_values_concatenate(self):
        left = trel(("a", 1, 3))
        right = trel(("b", 1, 3))
        result = run(TemporalUnion(LiteralRelation(left), LiteralRelation(right)))
        assert result.cardinality == 2

    def test_covered_right_tuple_contributes_nothing(self):
        left = trel(("a", 1, 10))
        right = trel(("a", 3, 5))
        result = run(TemporalUnion(LiteralRelation(left), LiteralRelation(right)))
        assert result.cardinality == 1

    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_snapshot_presence_is_the_union_of_presences(self, left, right):
        """At every point, a value is present iff it is present in either argument."""
        result = run(TemporalUnion(LiteralRelation(left), LiteralRelation(right)))
        points = set()
        for relation in (left, right):
            for tup in relation:
                points.update(tup.period.points())
        for time in points:
            expected = left.snapshot(time).as_set() | right.snapshot(time).as_set()
            assert result.snapshot(time).as_set() == expected


class TestDifference:
    def test_multiset_semantics(self):
        left = srel(("a", 1), ("a", 1), ("b", 2))
        right = srel(("a", 1))
        result = run(Difference(LiteralRelation(left), LiteralRelation(right)))
        assert [tuple(tup.values()) for tup in result] == [("a", 1), ("b", 2)]

    def test_preserves_left_order(self):
        left = srel(("c", 3), ("a", 1), ("b", 2))
        right = srel(("a", 1))
        result = run(Difference(LiteralRelation(left), LiteralRelation(right)))
        assert [tup["Name"] for tup in result] == ["c", "b"]

    def test_right_surplus_is_ignored(self):
        left = srel(("a", 1))
        right = srel(("a", 1), ("a", 1), ("z", 9))
        result = run(Difference(LiteralRelation(left), LiteralRelation(right)))
        assert result.is_empty()

    @given(snapshot_relations(), snapshot_relations())
    def test_count_arithmetic(self, left, right):
        result = run(Difference(LiteralRelation(left), LiteralRelation(right)))
        result_counts = result.as_multiset()
        left_counts, right_counts = left.as_multiset(), right.as_multiset()
        for tup in set(left_counts):
            assert result_counts[tup] == max(0, left_counts[tup] - right_counts[tup])
        assert max(0, left.cardinality - right.cardinality) <= result.cardinality <= left.cardinality


class TestTemporalDifference:
    def test_figure1_result(self, employee, project, expected_result):
        """The motivating query, built by hand from the algebra."""
        from repro.core.operations import Coalescing, Projection, Sort
        from repro.core.order_spec import OrderSpec

        left = TemporalDuplicateElimination(
            Projection(["EmpName", "T1", "T2"], LiteralRelation(employee))
        )
        right = Projection(["EmpName", "T1", "T2"], LiteralRelation(project))
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(
                TemporalDuplicateElimination(TemporalDifference(left, right))
            ),
        )
        result = run(plan)
        assert result.as_list() == expected_result.as_list()

    def test_subtracts_periods_of_value_equivalent_tuples(self):
        left = trel(("a", 1, 10))
        right = trel(("a", 3, 5), ("a", 7, 8))
        result = run(TemporalDifference(LiteralRelation(left), LiteralRelation(right)))
        assert [(tup["T1"], tup["T2"]) for tup in result] == [(1, 3), (5, 7), (8, 10)]

    def test_other_values_do_not_interfere(self):
        left = trel(("a", 1, 5))
        right = trel(("b", 1, 5))
        result = run(TemporalDifference(LiteralRelation(left), LiteralRelation(right)))
        assert result.cardinality == 1

    def test_complete_coverage_removes_tuple(self):
        left = trel(("a", 2, 4))
        right = trel(("a", 1, 5))
        result = run(TemporalDifference(LiteralRelation(left), LiteralRelation(right)))
        assert result.is_empty()

    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_snapshot_reducibility_for_duplicate_free_left(self, left, right):
        """With a snapshot-duplicate-free left argument, snapshots subtract pointwise."""
        deduplicated = run(TemporalDuplicateElimination(LiteralRelation(left)))
        result = run(
            TemporalDifference(LiteralRelation(deduplicated), LiteralRelation(right))
        )
        points = set()
        for tup in deduplicated:
            points.update(tup.period.points())
        for time in points:
            expected = deduplicated.snapshot(time).as_set() - right.snapshot(time).as_set()
            assert result.snapshot(time).as_set() == expected
