"""Serving-layer robustness: wire hygiene, retries, crash containment."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.faults import FAULTS
from repro.server import (
    RetryPolicy,
    Server,
    ServerOverloadedError,
    TCPClient,
    TCPFrontend,
)
from repro.stratum import TemporalDatabase
from repro.workloads import employee_relation, project_relation


def make_server(**kwargs) -> Server:
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return Server(database, max_concurrency=2, **kwargs)


@pytest.fixture
def frontend():
    with make_server() as server:
        with TCPFrontend(server, max_request_bytes=4096) as front:
            yield front


def raw_exchange(front: TCPFrontend, payload: bytes) -> bytes:
    """One raw write + readline against the front end."""
    with socket.create_connection(front.address, timeout=5.0) as sock:
        sock.sendall(payload)
        return sock.makefile("rb").readline()


class TestWireHygiene:
    def test_malformed_json_answers_bad_request_and_keeps_connection(self, frontend):
        host, port = frontend.address
        with TCPClient(host, port) as client:
            client._file.write(b"{this is not json}\n")
            client._file.flush()
            reply = json.loads(client._file.readline())
            assert reply["status"] == "error"
            assert reply["code"] == "BAD_REQUEST"
            # same connection still serves
            assert client.ping()["pong"] is True

    def test_unknown_op_answers_bad_request(self, frontend):
        host, port = frontend.address
        with TCPClient(host, port) as client:
            reply = client.request({"op": "frobnicate"})
            assert reply["code"] == "BAD_REQUEST"

    def test_oversized_request_rejected_then_connection_closed(self, frontend):
        padding = "x" * 8000  # over the 4096-byte cap
        reply_line = raw_exchange(
            frontend, json.dumps({"op": "ping", "pad": padding}).encode() + b"\n"
        )
        reply = json.loads(reply_line)
        assert reply["status"] == "error"
        assert reply["code"] == "REQUEST_TOO_LARGE"

    def test_oversized_request_does_not_buffer_unboundedly(self, frontend):
        # A "line" far beyond the cap, never terminated: the bounded read
        # must reject after cap+1 bytes instead of buffering forever.
        with socket.create_connection(frontend.address, timeout=5.0) as sock:
            sock.sendall(b"y" * 100_000)
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["code"] == "REQUEST_TOO_LARGE"

    def test_half_line_disconnect_is_dropped_silently(self, frontend):
        sock = socket.create_connection(frontend.address, timeout=5.0)
        sock.sendall(b'{"op": "ping"')  # no newline
        sock.close()
        time.sleep(0.05)
        # the server neither crashed nor wedged: a fresh client is served
        host, port = frontend.address
        with TCPClient(host, port) as probe:
            assert probe.ping()["pong"] is True

    def test_rejected_admission_carries_overloaded_code(self):
        with make_server(queue_limit=1) as server:
            with TCPFrontend(server) as front:
                host, port = front.address
                with TCPClient(host, port) as client:
                    # A large ``times`` budget so the client's probe queries
                    # cannot exhaust the injections mid-loop (which would let
                    # the blockers finish and the queue drain — a flake).
                    with FAULTS.armed(
                        "dbms.scan", kind="latency", latency=0.5, times=200
                    ):
                        # fill both workers + the one queue slot; a blocker's
                        # own submission can race a worker draining the queue
                        # and be rejected, so retry until exactly three are
                        # admitted (otherwise the queue has a free slot and
                        # the probe below is never rejected — a flake)
                        blockers = []
                        deadline = time.monotonic() + 5.0
                        while len(blockers) < 3 and time.monotonic() < deadline:
                            try:
                                blockers.append(
                                    server.submit("SELECT EmpName FROM EMPLOYEE")
                                )
                            except ServerOverloadedError:
                                time.sleep(0.01)
                        assert len(blockers) == 3, "could not fill the pool"
                        overloaded = None
                        for _ in range(20):
                            reply = client.query("SELECT EmpName FROM PROJECT")
                            if reply["status"] == "rejected":
                                overloaded = reply
                                break
                        for blocker in blockers:
                            blocker.result(timeout=10.0)
                assert overloaded is not None, "queue never filled"
                assert overloaded["code"] == "OVERLOADED"

    def test_wire_error_replies_carry_stable_codes(self, frontend):
        host, port = frontend.address
        with TCPClient(host, port) as client:
            reply = client.query("SELECT Nope FROM EMPLOYEE")
            assert reply["status"] == "error"
            assert reply["code"] == "PARSE_ERROR"  # unknown attribute in SELECT
            assert reply["request_id"] > 0


class TestTCPCancel:
    def test_cancel_by_client_chosen_id_from_second_connection(self, frontend):
        host, port = frontend.address
        results = {}

        def run_query():
            with TCPClient(host, port) as runner:
                with FAULTS.armed("dbms.scan", kind="latency", latency=10.0, times=4):
                    results["reply"] = runner.query(
                        "SELECT EmpName FROM EMPLOYEE", id="slow-query"
                    )

        thread = threading.Thread(target=run_query)
        thread.start()
        time.sleep(0.1)
        with TCPClient(host, port) as controller:
            assert controller.cancel(id="slow-query")["cancelled"] is True
        thread.join(timeout=5.0)
        assert results["reply"]["status"] == "cancelled"
        assert results["reply"]["code"] == "CANCELLED"

    def test_cancel_unknown_id_reports_false(self, frontend):
        host, port = frontend.address
        with TCPClient(host, port) as client:
            assert client.cancel(id="never-submitted")["cancelled"] is False
            assert client.cancel(request_id=424242)["cancelled"] is False
            assert client.cancel()["cancelled"] is False

    def test_pending_id_cleared_after_the_query_answers(self, frontend):
        host, port = frontend.address
        with TCPClient(host, port) as client:
            assert client.query("SELECT EmpName FROM EMPLOYEE", id="q1")["status"] == "ok"
            assert client.cancel(id="q1")["cancelled"] is False


class TestClientRetry:
    def test_policy_validates_and_backoff_is_capped_with_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3, jitter=0.5, seed=1)
        delays = [policy.delay(n) for n in range(6)]
        for index, delay in enumerate(delays):
            cap = min(0.3, 0.1 * 2**index)
            assert 0.5 * cap <= delay <= cap

    def test_seeded_policies_produce_identical_schedules(self):
        a = RetryPolicy(seed=99)
        b = RetryPolicy(seed=99)
        assert [a.delay(n) for n in range(5)] == [b.delay(n) for n in range(5)]

    def test_client_retries_overloaded_then_succeeds(self, frontend):
        host, port = frontend.address
        sleeps: list = []
        policy = RetryPolicy(max_attempts=3, seed=7)
        with TCPClient(host, port, retry=policy, sleep=sleeps.append) as client:
            with FAULTS.armed(
                "server.tcp",
                kind="error",
                exception=ServerOverloadedError("queue full"),
                times=2,
            ):
                reply = client.ping()
        assert reply["status"] == "ok"
        assert len(sleeps) == 2  # two rejected attempts, two backoffs

    def test_client_gives_up_after_max_attempts(self, frontend):
        host, port = frontend.address
        sleeps: list = []
        policy = RetryPolicy(max_attempts=2, seed=7)
        with TCPClient(host, port, retry=policy, sleep=sleeps.append) as client:
            with FAULTS.armed(
                "server.tcp",
                kind="error",
                exception=ServerOverloadedError("queue full"),
                times=None,
            ):
                reply = client.ping()
        assert reply["status"] == "rejected" and reply["code"] == "OVERLOADED"
        assert len(sleeps) == 1  # one backoff between the two attempts

    def test_non_retryable_errors_are_not_retried(self, frontend):
        host, port = frontend.address
        sleeps: list = []
        with TCPClient(
            host, port, retry=RetryPolicy(max_attempts=3), sleep=sleeps.append
        ) as client:
            reply = client.query("SELECT Nope FROM EMPLOYEE")
        assert reply["code"] == "PARSE_ERROR"
        assert sleeps == []

    def test_read_timeout_raises_and_next_request_reconnects(self, frontend):
        host, port = frontend.address
        client = TCPClient(host, port, read_timeout=0.1)
        try:
            with FAULTS.armed("server.tcp", kind="latency", latency=2.0, times=1):
                with pytest.raises(TimeoutError):
                    client.ping()
            assert client.ping()["pong"] is True  # fresh connection, served
        finally:
            client.close()

    def test_reconnect_once_on_server_closed_connection(self, frontend):
        host, port = frontend.address
        client = TCPClient(host, port)
        try:
            # provoke a server-side close with an oversized line...
            client._file.write(b"z" * 5000 + b"\n")
            client._file.flush()
            assert json.loads(client._file.readline())["code"] == "REQUEST_TOO_LARGE"
            # ...then the next request transparently reconnects
            assert client.ping()["pong"] is True
        finally:
            client.close()


class TestWorkerCrashContainment:
    def test_base_exception_kills_one_worker_not_the_server(self, monkeypatch):
        class SimulatedCrash(BaseException):
            """KeyboardInterrupt-like: beyond what except Exception catches."""

        from repro.session.session import Session

        original = Session.execute
        crashes = {"remaining": 1}

        def crashing(self, *args, **kwargs):
            if crashes["remaining"]:
                crashes["remaining"] -= 1
                raise SimulatedCrash("worker hit a BaseException")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Session, "execute", crashing)
        with make_server() as server:
            crashed = server.query("SELECT EmpName FROM EMPLOYEE")
            assert crashed.status == "error"
            assert "crashed" in crashed.error
            # the remaining worker keeps serving
            for _ in range(4):
                assert server.query("SELECT EmpName FROM EMPLOYEE").ok
            stats = server.stats()
            assert stats.worker_crashes == 1
            assert stats.failed == 1 and stats.completed == 4
            assert stats.completed + stats.failed == stats.submitted
        # close() joined the dead worker without hanging — reaching here is the proof

    def test_crash_metrics_exposed(self, monkeypatch):
        class SimulatedCrash(BaseException):
            pass

        from repro.session.session import Session

        def crashing(self, *args, **kwargs):
            raise SimulatedCrash("boom")

        monkeypatch.setattr(Session, "execute", crashing)
        with make_server() as server:
            server.query("SELECT EmpName FROM EMPLOYEE")
            assert "repro_server_worker_crashes_total 1" in server.metrics_exposition()
