"""Thread-safety of the shared plan cache and the catalog.

The serving layer (:mod:`repro.server`) shares one :class:`PlanCache` and
one :class:`~repro.dbms.catalog.Catalog` across every worker session, so
both must survive concurrent get/put/invalidation and concurrent appends
without losing updates or tearing reads.  These tests hammer exactly those
surfaces with plain threads — no server in the loop — so a failure points
at the data structure, not the scheduling above it.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.query import QueryResultSpec
from repro.dbms.catalog import Catalog
from repro.core.exceptions import CatalogError
from repro.session.cache import CachedPlan, PlanCache, PlanCacheKey
from repro.stratum import TemporalDatabase
from repro.workloads import EMPLOYEE_SCHEMA, employee_relation


def _entry(fingerprint: str, epoch: int) -> CachedPlan:
    # The cache never inspects the plan payload; a sentinel is enough.
    return CachedPlan(
        key=PlanCacheKey(fingerprint, epoch),
        plan=None,
        query_spec=QueryResultSpec.multiset(),
        optimization=None,
        parameter_count=0,
        normalized_statement=f"SELECT {fingerprint}",
    )


class TestPlanCacheThreadSafety:
    def test_concurrent_get_put_purge_is_consistent(self):
        """Many threads get/put/purge one cache: no exception, sane counters."""
        cache = PlanCache(capacity=32)
        threads = 8
        rounds = 300
        errors: list = []
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                for round_ in range(rounds):
                    epoch = round_ % 5
                    key = PlanCacheKey(f"stmt-{worker % 4}", epoch)
                    if cache.get(key) is None:
                        cache.put(_entry(f"stmt-{worker % 4}", epoch))
                    if round_ % 50 == 49:
                        cache.purge_stale(epoch)
                    assert len(cache) <= cache.capacity
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert not errors
        info = cache.info()
        assert info.hits + info.misses == threads * rounds
        assert info.size <= info.capacity
        # Every put corresponds to a miss; entries leave only by purge/evict.
        assert info.size + info.evictions + info.invalidations <= info.misses

    def test_purge_under_contention_never_serves_stale_epochs(self):
        """get() never returns an entry whose epoch differs from its key."""
        cache = PlanCache(capacity=16)
        stop = threading.Event()
        wrong: list = []

        def reader() -> None:
            while not stop.is_set():
                for epoch in range(4):
                    entry = cache.get(PlanCacheKey("q", epoch))
                    if entry is not None and entry.key.epoch != epoch:
                        wrong.append(entry)

        def writer() -> None:
            epoch = 0
            while not stop.is_set():
                cache.put(_entry("q", epoch % 4))
                cache.purge_stale(epoch % 4)
                epoch += 1

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads += [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        assert not wrong


class TestCatalogConcurrency:
    def test_concurrent_appends_lose_nothing_and_epochs_are_distinct(self):
        """N threads × M appends: all rows land, each append a distinct epoch."""
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee_relation())
        base_rows = catalog.table("EMPLOYEE").cardinality
        base_epoch = catalog.epoch
        threads, appends = 6, 20
        epochs: list = []
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def appender(worker: int) -> None:
            barrier.wait()
            for index in range(appends):
                serial = worker * appends + index
                inserted, epoch = catalog.insert(
                    "EMPLOYEE", [(f"W{serial}", "Sales", 1, 2 + serial % 5)]
                )
                assert inserted == 1
                with lock:
                    epochs.append(epoch)

        workers = [
            threading.Thread(target=appender, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        total = threads * appends
        assert catalog.table("EMPLOYEE").cardinality == base_rows + total
        # Atomic insert+epoch: the reported epochs are exactly the next
        # `total` integers, each one claimed by exactly one append.
        assert sorted(epochs) == list(range(base_epoch + 1, base_epoch + total + 1))
        assert catalog.epoch == base_epoch + total

    def test_snapshot_pins_contents_while_appends_proceed(self):
        """A snapshot taken mid-stream never changes, whatever lands after."""
        database = TemporalDatabase()
        database.register("EMPLOYEE", employee_relation())
        first = database.snapshot()
        pinned_rows = first.table("EMPLOYEE").cardinality
        pinned_epoch = first.epoch

        stop = threading.Event()

        def appender() -> None:
            serial = 0
            while not stop.is_set():
                database.insert("EMPLOYEE", [(f"S{serial}", "Sales", 1, 3)])
                serial += 1

        thread = threading.Thread(target=appender)
        thread.start()
        try:
            for _ in range(200):
                assert first.table("EMPLOYEE").cardinality == pinned_rows
                assert first.epoch == pinned_epoch
                mid = database.snapshot()
                # A fresh snapshot is internally consistent: its statistics
                # match its own relation, even while appends race.
                assert mid.statistics()["EMPLOYEE"] == mid.table("EMPLOYEE").cardinality
        finally:
            stop.set()
            thread.join()
        assert database.table("EMPLOYEE").cardinality > pinned_rows

    def test_snapshot_tables_are_read_only(self):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee_relation())
        snapshot = catalog.snapshot()
        with pytest.raises(CatalogError):
            snapshot.table("EMPLOYEE").insert([("X", "Sales", 1, 2)])
        with pytest.raises(CatalogError):
            snapshot.create_table("OTHER", EMPLOYEE_SCHEMA)
        with pytest.raises(CatalogError):
            snapshot.drop_table("EMPLOYEE")
