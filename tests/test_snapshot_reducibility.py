"""Property-based tests of snapshot reducibility (Section 2.2).

A temporal operation opT is snapshot reducible to its conventional
counterpart op when, for every time point t, the snapshot at t of
``opT(r, ...)`` equals ``op`` applied to the snapshots at t of the arguments.
Because several of the operations are only well behaved on arguments without
duplicates in snapshots (the paper's stated usage assumption), the tests
deduplicate snapshots first where the paper requires it and compare at the
set or multiset level accordingly.
"""

from hypothesis import given

from repro.core.expressions import count
from repro.core.operations import (
    DuplicateElimination,
    LiteralRelation,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
)
from repro.core.operations.base import EvaluationContext
from repro.core.relation import Relation
from repro.core.schema import RelationSchema, STRING

from .strategies import NARROW_TEMPORAL_SCHEMA, narrow_temporal_relations

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


def probe_points(*relations):
    points = set()
    for relation in relations:
        for tup in relation:
            points.add(tup.period.start)
            points.add(tup.period.end - 1)
    return sorted(points)


class TestTemporalDuplicateEliminationReducibility:
    @given(narrow_temporal_relations(max_size=6))
    def test_snapshots_equal_deduplicated_snapshots(self, relation):
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        for time in probe_points(relation):
            expected = relation.snapshot(time).as_set()
            assert result.snapshot(time).as_set() == expected
            assert not result.snapshot(time).has_duplicates()


class TestTemporalDifferenceReducibility:
    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_snapshots_subtract(self, left, right):
        deduplicated = run(TemporalDuplicateElimination(LiteralRelation(left)))
        result = run(TemporalDifference(LiteralRelation(deduplicated), LiteralRelation(right)))
        for time in probe_points(deduplicated, right):
            expected = deduplicated.snapshot(time).as_set() - right.snapshot(time).as_set()
            assert result.snapshot(time).as_set() == expected


class TestTemporalUnionReducibility:
    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_snapshots_union(self, left, right):
        result = run(TemporalUnion(LiteralRelation(left), LiteralRelation(right)))
        for time in probe_points(left, right):
            expected = left.snapshot(time).as_set() | right.snapshot(time).as_set()
            assert result.snapshot(time).as_set() == expected


class TestTemporalProductReducibility:
    OTHER_SCHEMA = RelationSchema.temporal([("Dept", STRING)], name="D")

    @given(narrow_temporal_relations(max_size=4), narrow_temporal_relations(max_size=4))
    def test_snapshot_cardinality_matches_product_of_snapshots(self, left, right_raw):
        right = Relation.from_rows(
            self.OTHER_SCHEMA, [(tup["Name"], tup["T1"], tup["T2"]) for tup in right_raw]
        )
        result = run(TemporalCartesianProduct(LiteralRelation(left), LiteralRelation(right)))
        for time in probe_points(left, right):
            expected = len(left.snapshot(time)) * len(right.snapshot(time))
            assert len(result.snapshot(time)) == expected


class TestTemporalAggregationReducibility:
    @given(narrow_temporal_relations(max_size=6))
    def test_snapshot_counts_match(self, relation):
        result = run(TemporalAggregation(["Name"], [count(alias="n")], LiteralRelation(relation)))
        for time in probe_points(relation):
            snapshot = relation.snapshot(time)
            expected = {}
            for tup in snapshot:
                expected[tup["Name"]] = expected.get(tup["Name"], 0) + 1
            actual = {
                tup["Name"]: tup["n"]
                for tup in result
                if tup.period.contains_point(time)
            }
            assert actual == expected
