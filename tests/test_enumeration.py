"""Tests for the plan enumeration algorithm (Section 6, Figure 5)."""

import pytest

from repro.core.applicability import results_acceptable
from repro.core.enumeration import enumerate_plans
from repro.core.exceptions import EnumerationError
from repro.core.operations import (
    BaseRelation,
    Coalescing,
    Projection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.query import QueryResultSpec
from repro.core.rules import ALGEBRAIC_RULES, DEFAULT_RULES, rules_by_name
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation, project_relation

RULES = rules_by_name()


def paper_plan():
    employee = Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
    project = Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))
    difference = TemporalDifference(TemporalDuplicateElimination(employee), project)
    return TransferToStratum(
        Sort(OrderSpec.ascending("EmpName"), Coalescing(TemporalDuplicateElimination(difference)))
    )


LIST_QUERY = QueryResultSpec.list(OrderSpec.ascending("EmpName"), distinct=True)


class TestEnumerationBasics:
    def test_initial_plan_is_always_included(self):
        result = enumerate_plans(paper_plan(), LIST_QUERY)
        assert paper_plan() in result

    def test_generates_multiple_plans_for_the_paper_query(self):
        result = enumerate_plans(paper_plan(), LIST_QUERY)
        assert len(result) > 20
        assert not result.statistics.truncated

    def test_plans_are_unique(self):
        result = enumerate_plans(paper_plan(), LIST_QUERY)
        signatures = [plan.signature() for plan in result]
        assert len(signatures) == len(set(signatures))

    def test_statistics_are_recorded(self):
        result = enumerate_plans(paper_plan(), LIST_QUERY)
        stats = result.statistics
        assert stats.plans_generated == len(result)
        assert stats.applications_succeeded == len(result) - 1
        assert stats.rule_usage
        assert stats.applications_attempted > stats.applications_succeeded

    def test_max_plans_budget(self):
        result = enumerate_plans(paper_plan(), LIST_QUERY, max_plans=5)
        assert len(result) == 5
        assert result.statistics.truncated

    def test_invalid_budget_rejected(self):
        with pytest.raises(EnumerationError):
            enumerate_plans(paper_plan(), LIST_QUERY, max_plans=0)

    def test_restricted_rule_set(self):
        only_d2 = [RULES["D2"]]
        result = enumerate_plans(paper_plan(), LIST_QUERY, rules=only_d2)
        # The outer rdupT can be removed; nothing else matches.
        assert len(result) == 2


class TestDeterminism:
    def test_same_inputs_same_plans(self):
        first = enumerate_plans(paper_plan(), LIST_QUERY)
        second = enumerate_plans(paper_plan(), LIST_QUERY)
        assert [plan.signature() for plan in first] == [plan.signature() for plan in second]

    def test_rule_order_does_not_change_the_plan_set(self):
        forward = enumerate_plans(paper_plan(), LIST_QUERY, rules=list(DEFAULT_RULES))
        backward = enumerate_plans(paper_plan(), LIST_QUERY, rules=list(reversed(DEFAULT_RULES)))
        assert {plan.signature() for plan in forward} == {plan.signature() for plan in backward}


class TestExpectedRewritesAreReachable:
    def test_paper_walkthrough_plan_is_generated(self):
        """Section 6: transfers pushed down, outer rdupT removed, coalescing pushed below \\T."""
        result = enumerate_plans(paper_plan(), LIST_QUERY)
        found_transfer_pushdown = False
        found_coalescing_below_difference = False
        for plan in result:
            labels = [type(node).__name__ for _, node in plan.locations()]
            if labels.count("TemporalDuplicateElimination") == 1:
                found_transfer_pushdown = True
            for _, node in plan.locations():
                if isinstance(node, TemporalDifference) and isinstance(
                    node.left, Coalescing
                ):
                    found_coalescing_below_difference = True
        assert found_transfer_pushdown
        assert found_coalescing_below_difference

    def test_query_kind_restricts_the_plan_space(self):
        """A multiset query admits rewrites (dropping the sort) a list query must not."""
        list_plans = enumerate_plans(paper_plan(), LIST_QUERY)
        multiset_plans = enumerate_plans(paper_plan(), QueryResultSpec.multiset())
        sortless_in_multiset = any(
            not plan.contains_operator(Sort) for plan in multiset_plans
        )
        sortless_in_list = any(not plan.contains_operator(Sort) for plan in list_plans)
        assert sortless_in_multiset
        assert not sortless_in_list


class TestTheorem61Correctness:
    """Every enumerated plan's result satisfies Definition 5.1 (Theorem 6.1)."""

    def setup_method(self):
        self.context = EvaluationContext(
            {"EMPLOYEE": employee_relation(), "PROJECT": project_relation()}
        )

    def check_query(self, query):
        reference = paper_plan().evaluate(self.context)
        result = enumerate_plans(paper_plan(), query, max_plans=400)
        for plan in result:
            produced = plan.evaluate(self.context)
            assert results_acceptable(reference, produced, query), plan.pretty()

    def test_list_query(self):
        self.check_query(LIST_QUERY)

    def test_multiset_query(self):
        self.check_query(QueryResultSpec.multiset())

    def test_set_query(self):
        self.check_query(QueryResultSpec.set())

    def test_algebraic_rules_only(self):
        query = LIST_QUERY
        reference = paper_plan().evaluate(self.context)
        result = enumerate_plans(paper_plan(), query, rules=ALGEBRAIC_RULES)
        for plan in result:
            assert results_acceptable(reference, plan.evaluate(self.context), query)
