"""Unit tests for the DBMS's iterator-based physical operators."""

import pytest

from repro.core.expressions import agg_sum, count, equals, greater_than
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.core.expressions import ProjectionItem, attribute
from repro.dbms.physical import (
    FilterOperator,
    HashAggregate,
    HashDistinct,
    HashJoin,
    HashMultisetDifference,
    HashMultisetUnion,
    MaterializedInput,
    NestedLoopProduct,
    ProjectOperator,
    RelabelOperator,
    SortOperator,
    TableScan,
    UnionAllOperator,
)

PEOPLE = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)], name="PEOPLE")
DEPTS = RelationSchema.snapshot([("Who", STRING), ("Dept", STRING)], name="DEPTS")


def people(*rows):
    return Relation.from_rows(PEOPLE, rows)


def depts(*rows):
    return Relation.from_rows(DEPTS, rows)


DATA = people(("a", 1), ("b", 2), ("a", 3), ("c", 2), ("a", 1))


class TestScanFilterProject:
    def test_table_scan_streams_all_rows(self):
        scan = TableScan(DATA, "PEOPLE")
        assert len(list(scan)) == 5
        assert scan.to_relation() == DATA
        assert "PEOPLE" in scan.describe()

    def test_filter(self):
        operator = FilterOperator(greater_than("Amount", 1), TableScan(DATA))
        assert [tup["Name"] for tup in operator] == ["b", "a", "c"]

    def test_filter_is_restartable(self):
        operator = FilterOperator(equals("Name", "a"), TableScan(DATA))
        assert len(list(operator)) == 3
        assert len(list(operator)) == 3  # iterating again re-reads the child

    def test_project_plain_and_computed(self):
        schema = RelationSchema.snapshot([("Name", STRING)])
        operator = ProjectOperator([ProjectionItem(attribute("Name"))], schema, TableScan(DATA))
        assert [tup["Name"] for tup in operator] == ["a", "b", "a", "c", "a"]

    def test_relabel(self):
        target = RelationSchema.snapshot([("N", STRING), ("A", INTEGER)])
        operator = RelabelOperator(target, TableScan(DATA))
        first = next(iter(operator))
        assert first["N"] == "a" and first["A"] == 1

    def test_explain_nests_children(self):
        operator = FilterOperator(equals("Name", "a"), TableScan(DATA))
        explanation = operator.explain()
        assert explanation.splitlines()[0].startswith("Filter")
        assert "TableScan" in explanation.splitlines()[1]


class TestSortDistinctAggregate:
    def test_sort(self):
        operator = SortOperator(OrderSpec.of("Amount DESC", "Name"), TableScan(DATA))
        assert [tup["Amount"] for tup in operator] == [3, 2, 2, 1, 1]

    def test_distinct_keeps_first_occurrences(self):
        operator = HashDistinct(TableScan(DATA))
        assert [tuple(tup.values()) for tup in operator] == [
            ("a", 1),
            ("b", 2),
            ("a", 3),
            ("c", 2),
        ]

    def test_distinct_with_relabelled_output(self):
        target = RelationSchema.snapshot([("N", STRING), ("A", INTEGER)])
        operator = HashDistinct(TableScan(DATA), target)
        assert operator.to_relation().schema == target
        assert operator.to_relation().cardinality == 4

    def test_aggregate(self):
        operator = HashAggregate(
            ["Name"],
            [count(alias="n"), agg_sum("Amount", alias="total")],
            RelationSchema.snapshot([("Name", STRING), ("n", INTEGER), ("total", INTEGER)]),
            TableScan(DATA),
        )
        rows = {tup["Name"]: (tup["n"], tup["total"]) for tup in operator}
        assert rows == {"a": (3, 5), "b": (1, 2), "c": (1, 2)}

    def test_aggregate_group_output_renaming(self):
        operator = HashAggregate(
            ["Name"],
            [count(alias="n")],
            RelationSchema.snapshot([("Person", STRING), ("n", INTEGER)]),
            TableScan(DATA),
            group_output_names=["Person"],
        )
        assert {tup["Person"] for tup in operator} == {"a", "b", "c"}


class TestJoinsAndSetOperators:
    def test_nested_loop_product(self):
        output = PEOPLE.concat(DEPTS)
        operator = NestedLoopProduct(
            output, TableScan(people(("a", 1), ("b", 2))), TableScan(depts(("a", "Sales")))
        )
        assert len(list(operator)) == 2

    def test_hash_join_matches_keys(self):
        output = PEOPLE.concat(DEPTS)
        operator = HashJoin(
            ["Name"],
            ["Who"],
            None,
            output,
            TableScan(people(("a", 1), ("b", 2), ("a", 3))),
            TableScan(depts(("a", "Sales"), ("c", "Ads"))),
        )
        rows = list(operator)
        assert len(rows) == 2
        assert all(tup["Name"] == tup["Who"] for tup in rows)

    def test_hash_join_residual_predicate(self):
        output = PEOPLE.concat(DEPTS)
        operator = HashJoin(
            ["Name"],
            ["Who"],
            greater_than("Amount", 1),
            output,
            TableScan(people(("a", 1), ("a", 3))),
            TableScan(depts(("a", "Sales"))),
        )
        rows = list(operator)
        assert len(rows) == 1 and rows[0]["Amount"] == 3

    def test_union_all(self):
        operator = UnionAllOperator(TableScan(people(("a", 1))), TableScan(people(("b", 2))))
        assert len(list(operator)) == 2

    def test_multiset_difference(self):
        operator = HashMultisetDifference(
            PEOPLE,
            TableScan(people(("a", 1), ("a", 1), ("b", 2))),
            TableScan(people(("a", 1))),
        )
        assert [tuple(tup.values()) for tup in operator] == [("a", 1), ("b", 2)]

    def test_multiset_union(self):
        operator = HashMultisetUnion(
            PEOPLE,
            TableScan(people(("a", 1), ("a", 1))),
            TableScan(people(("a", 1), ("b", 2))),
        )
        counts = operator.to_relation().as_multiset()
        assert {tuple(k.values()): v for k, v in counts.items()} == {("a", 1): 2, ("b", 2): 1}

    def test_materialized_input(self):
        operator = MaterializedInput(DATA, note="emulated rdupT")
        assert operator.to_relation() == DATA
        assert "emulated rdupT" in operator.describe()
