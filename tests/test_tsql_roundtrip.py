"""Front-end round-trip properties and error-position assertions.

The unparser (:mod:`repro.tsql.unparse`) must be a structural inverse of
the parser: for any parseable text, ``unparse(parse(text))`` is itself
parseable and ``parse(unparse(parse(text)))`` equals ``parse(text)``.  The
statements are generated from the grammar with hypothesis, so the property
covers combinator chains, predicates, arithmetic, aggregates, parameters
and the outer modifiers together.

Malformed inputs must fail with a :class:`~repro.core.exceptions.ParseError`
carrying the character offset of the offending token (``position``), which
editors and error reporters rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import ParseError
from repro.tsql import parse_statement, unparse_statement

# -- grammar-directed statement generation -------------------------------------

_IDENTIFIERS = ("EmpName", "Dept", "Salary", "T1", "T2", "Prj")
_TABLES = ("EMPLOYEE", "PROJECT", "ACCOUNT")
_COMPARATORS = ("=", "<>", "<", "<=", ">", ">=")
_COMBINATORS = (
    "UNION ALL",
    "UNION",
    "UNION TEMPORAL",
    "EXCEPT",
    "EXCEPT ALL",
    "EXCEPT TEMPORAL",
)
_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")

_literals = st.one_of(
    st.integers(min_value=0, max_value=999).map(str),
    st.floats(min_value=0, max_value=99, allow_nan=False).map(lambda f: f"{f:.2f}"),
    st.sampled_from(["'Sales'", "'Ads'", "''", "'O''Hara'", "TRUE", "FALSE"]),
)

_operands = st.one_of(
    st.sampled_from(_IDENTIFIERS),
    _literals,
    st.just("?"),
)


@st.composite
def _arithmetic(draw, depth: int = 2) -> str:
    if depth == 0 or draw(st.booleans()):
        return draw(_operands)
    left = draw(_arithmetic(depth - 1))
    right = draw(_arithmetic(depth - 1))
    operator = draw(st.sampled_from(["+", "-", "*", "/"]))
    if draw(st.booleans()):
        return f"({left} {operator} {right})"
    return f"{left} {operator} {right}"


@st.composite
def _predicate(draw, depth: int = 2) -> str:
    if depth == 0:
        left = draw(_arithmetic(1))
        operator = draw(st.sampled_from(_COMPARATORS))
        right = draw(_arithmetic(1))
        return f"{left} {operator} {right}"
    kind = draw(st.sampled_from(["comparison", "and", "or", "not", "between", "paren"]))
    if kind == "comparison":
        return draw(_predicate(0))
    if kind == "between":
        attr = draw(st.sampled_from(_IDENTIFIERS))
        low = draw(st.integers(min_value=0, max_value=9))
        high = draw(st.integers(min_value=10, max_value=99))
        return f"{attr} BETWEEN {low} AND {high}"
    if kind == "not":
        return f"NOT {draw(_predicate(depth - 1))}"
    if kind == "paren":
        return f"({draw(_predicate(depth - 1))})"
    connective = "AND" if kind == "and" else "OR"
    return f"{draw(_predicate(depth - 1))} {connective} {draw(_predicate(depth - 1))}"


@st.composite
def _select_block(draw) -> str:
    parts = ["SELECT"]
    if draw(st.booleans()):
        parts.append("DISTINCT")
    grouped = draw(st.booleans())
    if grouped:
        group_attrs = draw(
            st.lists(st.sampled_from(_IDENTIFIERS), min_size=1, max_size=2, unique=True)
        )
        items = list(group_attrs)
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            kind = draw(st.sampled_from(_AGGREGATES))
            argument = "*" if kind == "COUNT" and draw(st.booleans()) else draw(
                st.sampled_from(_IDENTIFIERS)
            )
            alias = draw(st.sampled_from(["agg1", "agg2", "n"]))
            items.append(f"{kind}({argument}) AS {alias}")
        parts.append(", ".join(items))
    elif draw(st.booleans()):
        parts.append("*")
    else:
        items = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            expression = draw(_arithmetic(1))
            if draw(st.booleans()) or not expression[0].isalpha():
                items.append(f"{expression} AS a{len(items)}")
            else:
                items.append(expression)
        parts.append(", ".join(items))
    tables = draw(st.lists(st.sampled_from(_TABLES), min_size=1, max_size=2, unique=True))
    parts.append("FROM " + ", ".join(tables))
    if draw(st.booleans()):
        parts.append("WHERE " + draw(_predicate(2)))
    if grouped:
        parts.append("GROUP BY " + ", ".join(group_attrs))
    return " ".join(parts)


@st.composite
def statements(draw) -> str:
    parts = [draw(_select_block())]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        parts.append(draw(st.sampled_from(_COMBINATORS)))
        parts.append(draw(_select_block()))
    if draw(st.booleans()):
        keys = draw(
            st.lists(st.sampled_from(_IDENTIFIERS), min_size=1, max_size=2, unique=True)
        )
        rendered = [
            key + draw(st.sampled_from(["", " ASC", " DESC"])) for key in keys
        ]
        parts.append("ORDER BY " + ", ".join(rendered))
    if draw(st.booleans()):
        parts.append("COALESCE")
    if draw(st.booleans()):
        parts[0] = draw(st.sampled_from(["EXPLAIN ", "EXPLAIN ANALYZE "])) + parts[0]
    return " ".join(parts)


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(statements())
    def test_parse_unparse_parse_is_stable(self, text: str) -> None:
        first = parse_statement(text)
        rendered = unparse_statement(first)
        second = parse_statement(rendered)
        assert second == first
        # And the normal form is a fixed point of the round trip.
        assert unparse_statement(second) == rendered

    @settings(max_examples=150, deadline=None)
    @given(statements())
    def test_unparse_is_deterministic(self, text: str) -> None:
        statement = parse_statement(text)
        assert unparse_statement(statement) == unparse_statement(statement)

    def test_case_and_whitespace_normalize(self) -> None:
        a = parse_statement("select   distinct EmpName from EMPLOYEE\nwhere Dept='Sales'")
        b = parse_statement("SELECT DISTINCT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'")
        assert unparse_statement(a) == unparse_statement(b)

    def test_embedded_quotes_round_trip(self) -> None:
        statement = parse_statement(
            "SELECT * FROM EMPLOYEE WHERE EmpName = 'O''Hara'"
        )
        predicate = statement.first.where
        assert predicate.right.value == "O'Hara"
        rendered = unparse_statement(statement)
        assert "'O''Hara'" in rendered
        assert parse_statement(rendered) == statement

    def test_parameter_indexes_survive_the_round_trip(self) -> None:
        statement = parse_statement(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ? AND Salary > ?"
        )
        assert statement.parameter_count == 2
        again = parse_statement(unparse_statement(statement))
        assert again.parameter_count == 2
        assert again == statement


class TestErrorPositions:
    @pytest.mark.parametrize(
        "text, offset",
        [
            # Missing select list: FROM where an expression must start.
            ("SELECT FROM EMPLOYEE", 7),
            # '=' with no right operand: error at end of input.
            ("SELECT * FROM EMPLOYEE WHERE Dept =", 35),
            # Unknown character.
            ("SELECT * FROM EMPLOYEE WHERE Dept = 'a' ; DROP", 40),
            # Unterminated string literal.
            ("SELECT * FROM EMPLOYEE WHERE Dept = 'oops", 36),
            # Trailing garbage after a complete statement.
            ("SELECT * FROM EMPLOYEE EMPLOYEE", 23),
            # Missing FROM keyword: error at the table name standing in its place.
            ("SELECT EmpName EMPLOYEE WHERE x = 1", 15),
        ],
    )
    def test_position_points_at_the_offending_token(self, text: str, offset: int) -> None:
        with pytest.raises(ParseError) as excinfo:
            parse_statement(text)
        assert excinfo.value.position == offset
        assert str(offset) in str(excinfo.value)

    def test_position_is_none_only_for_semantic_errors(self) -> None:
        # Lexical and syntactic errors always carry a position.
        for text in ["SELECT", "SELECT *", "SELECT * FROM", "(", "?"]:
            with pytest.raises(ParseError) as excinfo:
                parse_statement(text)
            assert excinfo.value.position is not None
