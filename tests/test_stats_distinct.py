"""Tests for exact/sampled distinct-count estimation."""

import pytest

from repro.stats import distinct_ratio, estimate_distinct, exact_distinct


class TestExactDistinct:
    def test_counts_distinct(self):
        assert exact_distinct([1, 1, 2, 3, 3, 3]) == 3

    def test_empty(self):
        assert exact_distinct([]) == 0


class TestEstimateDistinct:
    def test_small_inputs_are_exact(self):
        values = [i % 7 for i in range(100)]
        assert estimate_distinct(values) == 7.0

    def test_empty(self):
        assert estimate_distinct([]) == 0.0

    def test_large_inputs_are_sampled(self):
        # 100k values over 50 distinct — far past the exact threshold.
        values = [i % 50 for i in range(100_000)]
        estimate = estimate_distinct(values, exact_threshold=1000, sample_size=500)
        assert 50 <= estimate <= 200  # every distinct value lands in the sample

    def test_sampled_estimate_bounded_by_input_size(self):
        values = list(range(5000))  # all distinct
        estimate = estimate_distinct(values, exact_threshold=100, sample_size=64)
        assert 64 <= estimate <= 5000

    def test_deterministic(self):
        values = [i % 321 for i in range(20_000)]
        first = estimate_distinct(values, exact_threshold=100, sample_size=256)
        second = estimate_distinct(values, exact_threshold=100, sample_size=256)
        assert first == second


class TestDistinctRatio:
    def test_ratio_of_unique_input_is_one(self):
        assert distinct_ratio([1, 2, 3]) == 1.0

    def test_ratio_of_constant_input(self):
        assert distinct_ratio([7] * 10) == pytest.approx(0.1)

    def test_empty_defaults_to_one(self):
        assert distinct_ratio([]) == 1.0
