"""Unit and property tests for order specifications (Order(r), Prefix, IsPrefixOf)."""

import pytest
from hypothesis import given

from repro.core.exceptions import AttributeNotFound
from repro.core.order_spec import ASC, DESC, OrderSpec, SortDirection, SortKey
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING

from .strategies import order_specs

SCHEMA = RelationSchema.snapshot([("A", STRING), ("B", INTEGER), ("C", INTEGER)])


class TestConstruction:
    def test_unordered(self):
        assert OrderSpec.unordered().is_unordered()
        assert not OrderSpec.unordered()

    def test_ascending_helper(self):
        spec = OrderSpec.ascending("A", "B")
        assert spec.attributes == ("A", "B")
        assert all(key.direction is ASC for key in spec)

    def test_of_parses_directions(self):
        spec = OrderSpec.of("A", "B DESC", SortKey("C", ASC))
        assert spec.keys == (SortKey("A", ASC), SortKey("B", DESC), SortKey("C", ASC))

    def test_of_rejects_garbage(self):
        with pytest.raises(TypeError):
            OrderSpec.of(42)

    def test_str(self):
        assert str(OrderSpec.unordered()) == "<unordered>"
        assert str(OrderSpec.of("A DESC")) == "A DESC"


class TestPrefixFunctions:
    def test_is_prefix_of(self):
        assert OrderSpec.ascending("A").is_prefix_of(OrderSpec.ascending("A", "B"))
        assert OrderSpec.unordered().is_prefix_of(OrderSpec.ascending("A"))
        assert not OrderSpec.ascending("B").is_prefix_of(OrderSpec.ascending("A", "B"))
        assert not OrderSpec.ascending("A", "B").is_prefix_of(OrderSpec.ascending("A"))

    def test_is_prefix_of_respects_direction(self):
        assert not OrderSpec.of("A DESC").is_prefix_of(OrderSpec.of("A"))

    def test_common_prefix(self):
        a = OrderSpec.ascending("A", "B", "C")
        b = OrderSpec.ascending("A", "B")
        assert a.common_prefix(b) == OrderSpec.ascending("A", "B")
        assert a.common_prefix(OrderSpec.ascending("C")) == OrderSpec.unordered()

    def test_prefix_on_attributes_stops_at_first_dropped(self):
        # Table 1: sorted on A, B, C projected on {A, C} -> sorted on A.
        spec = OrderSpec.ascending("A", "B", "C")
        assert spec.prefix_on_attributes(["A", "C"]) == OrderSpec.ascending("A")

    def test_without_attributes(self):
        spec = OrderSpec.ascending("A", "T1", "B")
        assert spec.without_attributes(["T1", "T2"]) == OrderSpec.ascending("A")

    def test_restricted_to_keeps_later_keys(self):
        spec = OrderSpec.ascending("A", "B", "C")
        assert spec.restricted_to(["A", "C"]) == OrderSpec.ascending("A", "C")

    def test_concat_drops_duplicate_attributes(self):
        combined = OrderSpec.ascending("A", "B").concat(OrderSpec.of("B DESC", "C"))
        assert combined.attributes == ("A", "B", "C")


class TestComparisonKeys:
    def test_descending_sort(self):
        relation = Relation.from_rows(SCHEMA, [("a", 1, 1), ("b", 2, 1), ("c", 3, 1)])
        ordered = relation.sorted_by(OrderSpec.of("B DESC"))
        assert [tup["A"] for tup in ordered] == ["c", "b", "a"]

    def test_mixed_directions(self):
        relation = Relation.from_rows(
            SCHEMA, [("a", 1, 2), ("a", 1, 1), ("b", 1, 3), ("a", 2, 9)]
        )
        ordered = relation.sorted_by(OrderSpec.of("A", "B DESC", "C"))
        assert [tuple(tup.values()) for tup in ordered] == [
            ("a", 2, 9),
            ("a", 1, 1),
            ("a", 1, 2),
            ("b", 1, 3),
        ]

    def test_unknown_sort_attribute_raises(self):
        relation = Relation.from_rows(SCHEMA, [("a", 1, 1)])
        with pytest.raises(AttributeNotFound):
            relation.sorted_by(OrderSpec.ascending("Nope"))


class TestProperties:
    @given(order_specs(), order_specs())
    def test_common_prefix_is_prefix_of_both(self, a, b):
        prefix = a.common_prefix(b)
        assert prefix.is_prefix_of(a)
        assert prefix.is_prefix_of(b)

    @given(order_specs())
    def test_spec_is_prefix_of_itself(self, spec):
        assert spec.is_prefix_of(spec)

    @given(order_specs(), order_specs())
    def test_mutual_prefixes_are_equal(self, a, b):
        if a.is_prefix_of(b) and b.is_prefix_of(a):
            assert a == b
