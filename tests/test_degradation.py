"""Graceful degradation: fall back, answer correctly, count it, flag it.

Two degradation paths exist, and both are *differentially* tested — the
degraded answer must be tuple-for-tuple identical to the healthy one,
because a fallback that changes answers is a correctness bug wearing a
robustness costume:

* **memo-search failure** → the optimizer returns the default (initial)
  plan, flagged ``OptimizationOutcome.degraded``;
* **stratum physical-operator failure** → the failed pipelined region
  re-executes through the reference evaluator, flagged in
  ``StratumExecutionReport.degraded_operations``.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import (
    CancelledError,
    ResourceExhaustedError,
)
from repro.faults import FAULTS, CancellationToken, ResourceGuard
from repro.obs import MetricsRegistry, Tracer
from repro.session import Session
from repro.stratum import TemporalDatabase
from repro.workloads import employee_relation, project_relation


def make_database():
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return database


def rows_of(relation):
    return sorted(tuple(t.values()) for t in relation.tuples)


def same_answer(degraded, healthy) -> bool:
    """Identical rows, or (for temporal results) snapshot-set equivalent.

    The optimizer is *allowed* to return a differently-coalesced relation
    when the statement's required equivalence type permits it (that freedom
    is the paper's Section 3) — so the differential check compares at the
    weakest guarantee both plans must honor, and exact rows otherwise.
    """
    if rows_of(degraded) == rows_of(healthy):
        return True
    from repro.core.equivalence import snapshot_set_equivalent

    return snapshot_set_equivalent(degraded, healthy)


STATEMENTS = [
    "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'",
    "SELECT DISTINCT EmpName FROM EMPLOYEE COALESCE",
    (
        "SELECT DISTINCT EmpName FROM EMPLOYEE "
        "EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
        "ORDER BY EmpName COALESCE"
    ),
]


class TestMemoSearchDegradation:
    @pytest.mark.parametrize("statement", STATEMENTS)
    def test_default_plan_fallback_matches_optimized_answer(self, statement):
        healthy = Session(make_database()).execute(statement)
        degraded_session = Session(make_database())
        with FAULTS.armed("search.memo", times=1):
            degraded = degraded_session.execute(statement)
        assert degraded.optimization.degraded == "memo_search:FAULT_INJECTED"
        assert healthy.optimization.degraded is None
        assert same_answer(degraded.relation, healthy.relation)

    def test_degraded_outcome_reports_initial_plan_as_chosen(self):
        session = Session(make_database())
        with FAULTS.armed("search.memo", times=1):
            result = session.execute(STATEMENTS[2])
        outcome = result.optimization
        assert outcome.chosen_plan is outcome.initial_plan
        assert outcome.chosen_cost == outcome.initial_cost

    def test_memo_degradation_counted_and_flagged_on_trace(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        session = Session(make_database(), tracer=tracer, metrics=metrics)
        with FAULTS.armed("search.memo", times=1):
            session.execute(STATEMENTS[1])
        assert 'repro_degraded_total{stage="memo_search"} 1' in metrics.exposition()
        (trace,) = tracer.recent(1)
        optimize_spans = [s for s in trace.root.children if s.name == "optimize"]
        assert optimize_spans[0].attributes["degraded"] == "memo_search:FAULT_INJECTED"

    def test_next_statement_recovers_fully(self):
        session = Session(make_database())
        with FAULTS.armed("search.memo", times=1):
            session.execute(STATEMENTS[0])
        result = session.execute(STATEMENTS[1])
        assert result.optimization.degraded is None


class TestStratumPhysicalDegradation:
    def test_reference_fallback_matches_pipelined_answer(self):
        statement = STATEMENTS[2]
        healthy = Session(make_database()).execute(statement)
        with FAULTS.armed("stratum.pull", times=1):
            degraded = Session(make_database()).execute(statement)
        assert degraded.report.degraded_operations
        assert not healthy.report.degraded_operations
        assert rows_of(degraded.relation) == rows_of(healthy.relation)

    def test_degradation_entry_names_operator_path_and_code(self):
        with FAULTS.armed("stratum.pull", times=1):
            result = Session(make_database()).execute(STATEMENTS[2])
        entry = result.report.degraded_operations[0]
        assert " at " in entry and entry.endswith("FAULT_INJECTED")

    def test_stratum_degradation_counted_and_flagged_on_trace(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        session = Session(make_database(), tracer=tracer, metrics=metrics)
        with FAULTS.armed("stratum.pull", times=1):
            session.execute(STATEMENTS[2])
        assert 'repro_degraded_total{stage="stratum_physical"} 1' in metrics.exposition()
        (trace,) = tracer.recent(1)
        execute_spans = [s for s in trace.root.children if s.name == "execute"]
        assert execute_spans[0].attributes["degraded"]

    def test_repeated_faults_degrade_repeatedly_with_identical_answers(self):
        statement = STATEMENTS[2]
        healthy_rows = rows_of(Session(make_database()).execute(statement).relation)
        session = Session(make_database())
        with FAULTS.armed("stratum.pull", times=3):
            first = session.execute(statement)
        assert first.report.degraded_operations
        assert rows_of(first.relation) == healthy_rows
        # fault exhausted: back on the fast path, same answer
        second = session.execute(statement)
        assert not second.report.degraded_operations
        assert rows_of(second.relation) == healthy_rows


class TestDegradationNeverMasksControl:
    """Cancellation and budgets must stop the query, not trigger a fallback."""

    def test_cancellation_is_not_degraded_away(self):
        session = Session(make_database())
        token = CancellationToken()
        token.cancel("stop")
        with pytest.raises(CancelledError):
            session.execute(STATEMENTS[2], token=token)

    def test_resource_exhaustion_is_not_degraded_away(self):
        session = Session(make_database())
        with pytest.raises(ResourceExhaustedError):
            session.execute(STATEMENTS[2], guard=ResourceGuard(max_rows=1))
