"""Tests for regular and temporal duplicate elimination, including Figure 3."""

from hypothesis import given

from repro.core.operations import (
    DuplicateElimination,
    LiteralRelation,
    Projection,
    TemporalDuplicateElimination,
)
from repro.core.operations.base import EvaluationContext
from repro.core.operations.duplicates import temporal_duplicate_elimination
from repro.core.equivalence import snapshot_set_equivalent
from repro.core.relation import Relation
from repro.workloads import (
    EMPLOYEE_SCHEMA,
    employee_relation,
    figure3_r1,
    figure3_r2_rows,
    figure3_r3,
)

from .strategies import narrow_temporal_relations, snapshot_relations

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


class TestFigure3:
    """The worked example of Section 2.5."""

    def test_r1_is_the_projection_of_employee(self, r1):
        projection = Projection(
            ["EmpName", "T1", "T2"], LiteralRelation(employee_relation())
        )
        assert run(projection).as_list() == r1.as_list()

    def test_regular_duplicate_elimination_yields_r2(self, r1):
        result = run(DuplicateElimination(LiteralRelation(r1)))
        # The time attributes are demoted to 1.T1 / 1.T2 (snapshot result).
        assert result.schema.attributes == ("EmpName", "1.T1", "1.T2")
        assert [tuple(tup.values()) for tup in result] == figure3_r2_rows()

    def test_temporal_duplicate_elimination_yields_r3(self, r1, r3):
        result = run(TemporalDuplicateElimination(LiteralRelation(r1)))
        assert result.as_list() == r3.as_list()

    def test_r3_john_period_was_cut(self, r1):
        result = run(TemporalDuplicateElimination(LiteralRelation(r1)))
        john = [tup for tup in result if tup["EmpName"] == "John"]
        assert [(tup["T1"], tup["T2"]) for tup in john] == [(1, 8), (8, 11)]


class TestRegularDuplicateElimination:
    def test_keeps_first_occurrences_in_order(self):
        from .strategies import SNAPSHOT_SCHEMA

        relation = Relation.from_rows(
            SNAPSHOT_SCHEMA, [("b", 1), ("a", 2), ("b", 1), ("a", 2), ("c", 3)]
        )
        result = run(DuplicateElimination(LiteralRelation(relation)))
        assert [tup["Name"] for tup in result] == ["b", "a", "c"]

    def test_snapshot_argument_schema_unchanged(self):
        from .strategies import SNAPSHOT_SCHEMA

        relation = Relation.from_rows(SNAPSHOT_SCHEMA, [("a", 1)])
        result = run(DuplicateElimination(LiteralRelation(relation)))
        assert result.schema == SNAPSHOT_SCHEMA

    @given(snapshot_relations())
    def test_result_never_has_duplicates(self, relation):
        result = run(DuplicateElimination(LiteralRelation(relation)))
        assert not result.has_duplicates()
        assert result.as_set() == relation.as_set()

    @given(snapshot_relations())
    def test_idempotent(self, relation):
        once = run(DuplicateElimination(LiteralRelation(relation)))
        twice = run(DuplicateElimination(LiteralRelation(once)))
        assert once.as_list() == twice.as_list()


class TestTemporalDuplicateElimination:
    def test_removes_regular_duplicates_too(self, r1):
        result = run(TemporalDuplicateElimination(LiteralRelation(r1)))
        assert not result.has_duplicates()

    def test_nonoverlapping_relation_is_unchanged(self, r3):
        result = run(TemporalDuplicateElimination(LiteralRelation(r3)))
        assert result.as_list() == r3.as_list()

    def test_empty_relation(self):
        from .strategies import NARROW_TEMPORAL_SCHEMA

        empty = Relation.empty(NARROW_TEMPORAL_SCHEMA)
        assert run(TemporalDuplicateElimination(LiteralRelation(empty))).is_empty()

    def test_contained_period_disappears(self):
        from .strategies import NARROW_TEMPORAL_SCHEMA

        relation = Relation.from_rows(NARROW_TEMPORAL_SCHEMA, [("a", 1, 10), ("a", 3, 5)])
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        assert [(tup["T1"], tup["T2"]) for tup in result] == [(1, 10)]

    def test_interior_overlap_splits_later_tuple(self):
        from .strategies import NARROW_TEMPORAL_SCHEMA

        relation = Relation.from_rows(NARROW_TEMPORAL_SCHEMA, [("a", 3, 5), ("a", 1, 10)])
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        periods = [(tup["T1"], tup["T2"]) for tup in result]
        assert periods == [(3, 5), (1, 3), (5, 10)]

    @given(narrow_temporal_relations())
    def test_result_has_no_snapshot_duplicates(self, relation):
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        assert not result.has_snapshot_duplicates()

    @given(narrow_temporal_relations())
    def test_result_is_snapshot_set_equivalent_to_argument(self, relation):
        """Rule D4: rdupT(r) ≡SS r."""
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        assert snapshot_set_equivalent(result, relation)

    @given(narrow_temporal_relations())
    def test_cardinality_bound_of_table1(self, relation):
        result = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        if relation.cardinality:
            assert result.cardinality <= 2 * relation.cardinality - 1
        else:
            assert result.is_empty()

    @given(narrow_temporal_relations())
    def test_idempotent(self, relation):
        once = run(TemporalDuplicateElimination(LiteralRelation(relation)))
        twice = run(TemporalDuplicateElimination(LiteralRelation(once)))
        assert once.as_list() == twice.as_list()

    def test_helper_function_matches_operator(self, r1, r3):
        assert temporal_duplicate_elimination(list(r1.tuples)) == list(r3.tuples)
