"""Integration tests: the TemporalDatabase layer end to end.

These are the repository's acceptance tests: parse a temporal SQL statement,
optimize it with the paper's machinery, execute it across the stratum and the
conventional DBMS, and compare against (a) the expected results from the
paper and (b) the reference evaluation of the unoptimized plan under the
Definition 5.1 acceptance criterion.
"""

import pytest

from repro.core.applicability import results_acceptable
from repro.core.equivalence import list_equivalent, multiset_equivalent
from repro.core.operations import Coalescing, Sort, TemporalDifference, TransferToStratum
from repro.stratum import TemporalDatabase, TemporalQueryOptimizer
from repro.workloads import (
    WorkloadParameters,
    employee_relation,
    expected_result_relation,
    generate_employees,
    generate_projects,
    project_relation,
)


class TestPaperExample:
    def test_query_reproduces_figure1_result(self, temporal_db, paper_statement, expected_result):
        result = temporal_db.query(paper_statement)
        assert list_equivalent(result, expected_result)

    def test_unoptimized_execution_matches_too(self, employee, project, paper_statement, expected_result):
        database = TemporalDatabase(optimize_queries=False)
        database.register("EMPLOYEE", employee)
        database.register("PROJECT", project)
        result = database.query(paper_statement)
        # Without optimization the whole plan runs in the DBMS via emulation;
        # the result is only guaranteed up to the query's required
        # equivalence (here: ordering on EmpName + content).
        outcome = database.execute(paper_statement)
        assert results_acceptable(expected_result, outcome.relation, outcome.query_spec)
        assert multiset_equivalent(result, expected_result)

    def test_optimization_outcome_reports_improvement(self, temporal_db, paper_statement):
        outcome = temporal_db.execute(paper_statement)
        optimization = outcome.optimization
        assert optimization.plans_considered > 20
        assert optimization.chosen_cost.total <= optimization.initial_cost.total
        assert optimization.improvement_factor >= 1.0

    def test_initial_plan_matches_figure_2a(self, temporal_db, paper_statement):
        initial, spec = temporal_db.parse(paper_statement)
        assert isinstance(initial, TransferToStratum)
        assert isinstance(initial.child, Sort)
        assert isinstance(initial.child.child, Coalescing)

    def test_chosen_plan_moves_temporal_work_to_the_stratum(self, temporal_db, paper_statement):
        outcome = temporal_db.execute(paper_statement)
        chosen = outcome.optimization.chosen_plan
        # The chosen plan must not emulate temporal operations in the DBMS.
        assert outcome.report.dbms_emulated_operations == []
        # And it must still contain the temporal difference (in the stratum).
        assert chosen.contains_operator(TemporalDifference)

    def test_explain_renders_both_plans(self, temporal_db, paper_statement):
        explanation = temporal_db.explain(paper_statement)
        assert "initial plan" in explanation
        assert "chosen plan" in explanation
        assert "stratum" in explanation and "dbms" in explanation


class TestOtherStatements:
    def test_selection_with_distinct_has_sequenced_semantics(self, temporal_db):
        result = temporal_db.query("SELECT DISTINCT Dept FROM EMPLOYEE WHERE Dept = 'Sales'")
        # Temporal statement: the result is timestamped and duplicate free in
        # every snapshot (someone is in Sales during [1,8) and [8,12)).
        assert {tup["Dept"] for tup in result} == {"Sales"}
        assert result.schema.is_temporal
        assert not result.has_snapshot_duplicates()
        assert sorted((tup["T1"], tup["T2"]) for tup in result) == [(1, 8), (8, 12)]

    def test_order_by_descending(self, temporal_db):
        result = temporal_db.query("SELECT EmpName FROM EMPLOYEE ORDER BY EmpName DESC")
        names = [tup["EmpName"] for tup in result]
        assert names == sorted(names, reverse=True)

    def test_temporal_aggregation_statement(self, temporal_db):
        result = temporal_db.query(
            "SELECT Dept, COUNT(EmpName) AS n FROM EMPLOYEE GROUP BY Dept"
        )
        assert result.schema.is_temporal
        sales_at_3 = [
            tup["n"]
            for tup in result
            if tup["Dept"] == "Sales" and tup["T1"] <= 3 < tup["T2"]
        ]
        assert sales_at_3 == [2]

    def test_temporal_union_statement(self, temporal_db):
        result = temporal_db.query(
            "SELECT EmpName FROM EMPLOYEE UNION TEMPORAL SELECT EmpName FROM PROJECT COALESCE"
        )
        assert result.schema.is_temporal
        assert not result.has_snapshot_duplicates() or result.cardinality > 0

    def test_registering_and_inserting(self):
        database = TemporalDatabase()
        database.register("EMPLOYEE", employee_relation())
        database.insert("EMPLOYEE", [("Mia", "Support", 3, 9)])
        assert database.table("EMPLOYEE").cardinality == 6
        result = database.query("SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Support'")
        assert {tup["EmpName"] for tup in result} == {"Mia"}

    def test_statistics_feed_the_cost_model(self, temporal_db):
        assert temporal_db.statistics() == {"EMPLOYEE": 5, "PROJECT": 8}


class TestDefinition51AcrossTheEngine:
    """Optimized, engine-executed results satisfy Definition 5.1 vs the reference."""

    STATEMENTS = [
        "SELECT DISTINCT EmpName FROM EMPLOYEE EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
        "ORDER BY EmpName COALESCE",
        "SELECT EmpName FROM EMPLOYEE EXCEPT TEMPORAL SELECT EmpName FROM PROJECT",
        "SELECT DISTINCT EmpName FROM EMPLOYEE",
        "SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Sales' ORDER BY EmpName",
        "SELECT EmpName FROM EMPLOYEE UNION ALL SELECT EmpName FROM PROJECT",
        "SELECT Dept, COUNT(EmpName) AS n FROM EMPLOYEE GROUP BY Dept ORDER BY Dept",
    ]

    @pytest.mark.parametrize("statement", STATEMENTS)
    def test_statement(self, temporal_db, statement):
        initial_plan, spec = temporal_db.parse(statement)
        reference = temporal_db.evaluate_reference(initial_plan)
        outcome = temporal_db.execute(statement)
        assert results_acceptable(reference, outcome.relation, spec), statement


class TestScaledWorkload:
    def test_paper_query_on_generated_data(self):
        employees = generate_employees(WorkloadParameters(tuples=150, entities=30, seed=9))
        projects = generate_projects(WorkloadParameters(tuples=200, entities=30, seed=10))
        database = TemporalDatabase(optimizer=TemporalQueryOptimizer(max_plans=300))
        database.register("EMPLOYEE", employees)
        database.register("PROJECT", projects)
        statement = (
            "SELECT DISTINCT EmpName FROM EMPLOYEE "
            "EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
            "ORDER BY EmpName COALESCE"
        )
        initial_plan, spec = database.parse(statement)
        reference = database.evaluate_reference(initial_plan)
        outcome = database.execute(statement)
        assert results_acceptable(reference, outcome.relation, spec)
        assert outcome.relation.is_coalesced()
        assert not outcome.relation.has_snapshot_duplicates()
