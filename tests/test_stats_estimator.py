"""Tests for table profiles and the histogram-backed cardinality estimator."""

import pytest
from hypothesis import given, settings

from repro.core.cost import CostModel, estimate_cardinality, estimate_cost
from repro.core.expressions import (
    And,
    AttributeRef,
    Comparison,
    ComparisonOperator,
    Literal,
    Not,
    Or,
    between,
    equals,
)
from repro.core.operations import (
    Aggregation,
    BaseRelation,
    Coalescing,
    DuplicateElimination,
    Join,
    LiteralRelation,
    Projection,
    Selection,
    TemporalCartesianProduct,
    TemporalDuplicateElimination,
)
from repro.core.expressions import count as count_aggregate
from repro.core.relation import Relation
from repro.stats import CardinalityEstimator, TableProfile
from repro.workloads import (
    EMPLOYEE_SCHEMA,
    PROJECT_SCHEMA,
    employee_relation,
    project_relation,
    skewed_paper_workload,
)

from .strategies import profiled_relation_pairs, temporal_relations


@pytest.fixture(scope="module")
def skewed():
    employees, projects = skewed_paper_workload(20)
    return {"EMPLOYEE": employees, "PROJECT": projects}


@pytest.fixture(scope="module")
def estimator(skewed):
    return CardinalityEstimator.from_relations(skewed)


class TestTableProfile:
    def test_basic_fields(self):
        profile = TableProfile.from_relation("EMPLOYEE", employee_relation())
        assert profile.cardinality == 5
        assert profile.attributes["Dept"].distinct == 2.0
        assert profile.period is not None
        assert 0.0 < profile.coalesced_fraction <= 1.0
        assert 0.0 < profile.row_distinct_ratio <= 1.0

    def test_coalesced_fraction_counts_merged_intervals(self):
        rows = [
            ("Mia", "Sales", 1, 4),
            ("Mia", "Sales", 4, 8),   # adjacent: merges with the first
            ("Mia", "Sales", 10, 12),  # gap: its own interval
            ("Tom", "Ads", 1, 3),
        ]
        relation = Relation.from_rows(EMPLOYEE_SCHEMA, rows)
        profile = TableProfile.from_relation("EMPLOYEE", relation)
        assert profile.coalesced_fraction == pytest.approx(3 / 4)

    def test_snapshot_relation_has_no_period_histogram(self):
        schema = EMPLOYEE_SCHEMA.drop_time()
        relation = Relation.from_rows(
            schema, [("Mia", "Sales", 1, 4), ("Tom", "Ads", 2, 5)]
        )
        profile = TableProfile.from_relation("S", relation)
        assert profile.period is None
        assert profile.coalesced_fraction == 1.0


class TestSelectivities:
    def test_equality_matches_actual_frequency(self, skewed, estimator):
        employees = skewed["EMPLOYEE"]
        actual = sum(1 for t in employees if t["Dept"] == "Sales") / len(employees)
        assert estimator.selectivity(equals("Dept", "Sales")) == pytest.approx(
            actual, rel=0.25
        )

    def test_unknown_attribute_falls_back(self, estimator):
        assert estimator.selectivity(equals("NoSuch", 1)) == pytest.approx(
            estimator.fallback_selectivity
        )

    def test_boolean_connectives(self, estimator):
        sales = estimator.selectivity(equals("Dept", "Sales"))
        assert estimator.selectivity(Literal(True)) == 1.0
        assert estimator.selectivity(Literal(False)) == 0.0
        assert estimator.selectivity(Not(equals("Dept", "Sales"))) == pytest.approx(
            1.0 - sales
        )
        conjunction = estimator.selectivity(
            And(equals("Dept", "Sales"), between("T1", 1, 200))
        )
        assert conjunction <= sales + 1e-9
        disjunction = estimator.selectivity(
            Or(equals("Dept", "Sales"), equals("Dept", "Legal"))
        )
        assert disjunction >= sales - 1e-9

    def test_clash_prefixes_are_stripped(self, estimator):
        prefixed = Comparison(
            ComparisonOperator.EQ, AttributeRef("1.Dept"), Literal("Sales")
        )
        assert estimator.selectivity(prefixed) == pytest.approx(
            estimator.selectivity(equals("Dept", "Sales"))
        )

    def test_equijoin_tracks_the_actual_match_rate(self, skewed, estimator):
        join = Comparison(
            ComparisonOperator.EQ, AttributeRef("1.EmpName"), AttributeRef("2.EmpName")
        )
        employees, projects = skewed["EMPLOYEE"], skewed["PROJECT"]
        matches = sum(
            1
            for left in employees
            for right in projects
            if left["EmpName"] == right["EmpName"]
        )
        actual = matches / (len(employees) * len(projects))
        estimate = estimator.selectivity(join)
        # Under Zipf skew the uniform 1/d assumption is several times low; the
        # end-biased dot product must land within a factor of two instead.
        distinct = estimator.profiles["EMPLOYEE"].attributes["EmpName"].distinct
        assert estimate > 1.0 / distinct
        assert actual / 2 <= estimate <= actual * 2


class TestOperatorCardinality:
    def test_selection_scales_by_selectivity(self, estimator):
        node = Selection(equals("Dept", "Sales"), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        estimate = estimator.operator_cardinality(node, [100.0])
        assert estimate == pytest.approx(
            100.0 * estimator.selectivity(equals("Dept", "Sales"))
        )

    def test_temporal_product_uses_pooled_overlap(self, estimator):
        node = TemporalCartesianProduct(
            BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA),
            BaseRelation("PROJECT", PROJECT_SCHEMA),
        )
        estimate = estimator.operator_cardinality(node, [10.0, 20.0])
        assert estimate == pytest.approx(200.0 * estimator.overlap_fraction)

    def test_duplicate_elimination_and_coalescing_shrink(self, estimator):
        base = BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)
        for node in (
            DuplicateElimination(base),
            TemporalDuplicateElimination(base),
            Coalescing(base),
        ):
            estimate = estimator.operator_cardinality(node, [50.0])
            assert 0.0 <= estimate <= 50.0

    def test_aggregation_bounded_by_group_count(self, estimator):
        node = Aggregation(["Dept"], [count_aggregate()], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        distinct = estimator.profiles["EMPLOYEE"].attributes["Dept"].distinct
        assert estimator.operator_cardinality(node, [1000.0]) == pytest.approx(distinct)
        assert estimator.operator_cardinality(node, [2.0]) == pytest.approx(2.0)

    def test_unhandled_operators_fall_back(self, estimator):
        node = Projection(["EmpName"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        assert estimator.operator_cardinality(node, [10.0]) is None


class TestAssumedTables:
    def test_known_tables_are_data_driven(self, skewed, estimator):
        plan = Selection(equals("Dept", "Sales"), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        estimate = estimator.estimate(plan)
        assert estimate.assumed_tables == frozenset()
        assert estimate.data_driven
        assert estimate.cardinality == pytest.approx(
            len(skewed["EMPLOYEE"]) * estimator.selectivity(equals("Dept", "Sales"))
        )

    def test_statistics_mapping_backfills_unprofiled_tables(self, estimator):
        plan = BaseRelation("MISSING", PROJECT_SCHEMA)
        estimator.reset_assumed()
        assert estimate_cardinality(plan, {"MISSING": 77}, estimator=estimator) == 77.0
        # The table is still flagged: its histograms are missing even though
        # the caller knew its cardinality.
        assert "MISSING" in estimator.assumed_tables
        estimator.reset_assumed()
        assert estimate_cardinality(plan, {}, estimator=estimator) == pytest.approx(
            estimator.default_base_cardinality
        )
        estimator.reset_assumed()

    def test_mistyped_range_predicate_falls_back_instead_of_raising(self, estimator):
        from repro.core.expressions import less_than

        selectivity = estimator.selectivity(less_than("EmpName", 5))
        assert 0.0 <= selectivity <= 1.0

    def test_missing_tables_are_recorded(self, estimator):
        plan = Join(
            Literal(True),
            BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA),
            BaseRelation("MISSING", PROJECT_SCHEMA),
        )
        estimator.reset_assumed()
        estimate = estimator.estimate(plan)
        assert estimate.assumed_tables == frozenset({"MISSING"})
        assert not estimate.data_driven
        # The estimator also accumulates across calls until reset.
        assert "MISSING" in estimator.assumed_tables
        estimator.reset_assumed()
        assert estimator.assumed_tables == set()

    def test_estimate_agrees_with_estimate_cardinality(self, skewed, estimator):
        plan = Coalescing(
            TemporalDuplicateElimination(
                Selection(equals("Dept", "Sales"), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
            )
        )
        statistics = {name: len(relation) for name, relation in skewed.items()}
        via_cost = estimate_cardinality(plan, statistics, estimator=estimator)
        assert estimator.estimate(plan).cardinality == pytest.approx(via_cost)

    def test_estimate_cost_consumes_the_estimator(self, skewed, estimator):
        plan = Selection(equals("Dept", "Legal"), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        statistics = {name: len(relation) for name, relation in skewed.items()}
        with_stats = estimate_cost(plan, statistics, estimator=estimator)
        without = estimate_cost(plan, statistics)
        assert with_stats.output_cardinality != pytest.approx(without.output_cardinality)


class TestStatisticsWiring:
    def test_explicit_optimizer_with_use_statistics_is_rejected(self):
        from repro.dbms.engine import ConventionalDBMS
        from repro.dbms.optimizer import CostGuidedConventionalOptimizer

        with pytest.raises(ValueError):
            ConventionalDBMS(
                optimizer=CostGuidedConventionalOptimizer(), use_statistics=True
            )

    def test_unoptimized_execution_reports_histogram_backed_cost(self, skewed):
        from repro.stratum import TemporalDatabase
        from repro.workloads import paper_query

        plan, spec = paper_query()
        outcomes = {}
        for use_statistics in (False, True):
            db = TemporalDatabase(optimize_queries=False, use_statistics=use_statistics)
            for name, relation in skewed.items():
                db.register(name, relation)
            outcomes[use_statistics] = db.execute_plan(plan, spec)
        assert outcomes[True].relation == outcomes[False].relation
        assert (
            outcomes[True].optimization.chosen_cost.total
            != outcomes[False].optimization.chosen_cost.total
        )


class TestEstimatorProperties:
    """The satellite property suite: bounds every estimate must satisfy."""

    @settings(max_examples=40, deadline=None)
    @given(pair=profiled_relation_pairs())
    def test_selection_estimate_within_input_bounds(self, pair):
        left, _, estimator = pair
        plan = Selection(equals("Name", "John"), LiteralRelation(left))
        estimate = estimator.estimate(plan).cardinality
        assert 0.0 <= estimate <= len(left) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(pair=profiled_relation_pairs())
    def test_join_estimate_never_exceeds_product_of_inputs(self, pair):
        left, right, estimator = pair
        predicate = Comparison(
            ComparisonOperator.EQ, AttributeRef("1.Name"), AttributeRef("2.Name")
        )
        plan = Join(predicate, LiteralRelation(left), LiteralRelation(right))
        estimate = estimator.estimate(plan).cardinality
        assert 0.0 <= estimate <= len(left) * len(right) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(pair=profiled_relation_pairs())
    def test_shrinking_operators_never_grow(self, pair):
        left, _, estimator = pair
        for wrap in (DuplicateElimination, TemporalDuplicateElimination, Coalescing):
            estimate = estimator.estimate(wrap(LiteralRelation(left))).cardinality
            assert 0.0 <= estimate <= len(left) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(relation=temporal_relations())
    def test_estimates_are_data_driven_for_literal_plans(self, relation):
        estimator = CardinalityEstimator.from_relations({"R": relation})
        estimate = estimator.estimate(Coalescing(LiteralRelation(relation)))
        assert estimate.assumed_tables == frozenset()
