"""Unit tests for relation schemas and domains."""

import pytest

from repro.core.exceptions import SchemaError, TemporalSchemaError
from repro.core.schema import (
    BOOLEAN,
    BUILTIN_DOMAINS,
    Domain,
    FLOAT,
    INTEGER,
    RelationSchema,
    STRING,
    TIME,
)


class TestDomains:
    def test_string_domain(self):
        assert STRING.contains("Sales")
        assert not STRING.contains(5)

    def test_integer_domain(self):
        assert INTEGER.contains(5)
        assert not INTEGER.contains("5")
        assert not INTEGER.contains(True)

    def test_float_domain_accepts_integers(self):
        assert FLOAT.contains(5)
        assert FLOAT.contains(5.5)
        assert not FLOAT.contains(True)

    def test_boolean_domain(self):
        assert BOOLEAN.contains(True)
        assert not BOOLEAN.contains(1)

    def test_time_domain(self):
        assert TIME.contains(8)
        assert not TIME.contains("8")

    def test_unvalidated_domain_accepts_anything(self):
        anything = Domain("anything")
        assert anything.contains(object())

    def test_builtin_registry(self):
        assert BUILTIN_DOMAINS["string"] is STRING
        assert BUILTIN_DOMAINS["T"] is TIME


class TestSchemaConstruction:
    def test_from_pairs_preserves_order(self):
        schema = RelationSchema.from_pairs([("B", STRING), ("A", INTEGER)])
        assert schema.attributes == ("B", "A")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "A"], {"A": STRING})

    def test_missing_domain_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "B"], {"A": STRING})

    def test_extra_domain_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"], {"A": STRING, "B": STRING})

    def test_temporal_schema_requires_both_time_attributes(self):
        with pytest.raises(TemporalSchemaError):
            RelationSchema(["A", "T1"], {"A": STRING, "T1": TIME})

    def test_temporal_attributes_must_use_time_domain(self):
        with pytest.raises(TemporalSchemaError):
            RelationSchema(
                ["A", "T1", "T2"], {"A": STRING, "T1": INTEGER, "T2": TIME}
            )

    def test_temporal_helper_appends_time_attributes(self):
        schema = RelationSchema.temporal([("EmpName", STRING)])
        assert schema.attributes == ("EmpName", "T1", "T2")
        assert schema.is_temporal

    def test_temporal_helper_rejects_explicit_time_attributes(self):
        with pytest.raises(TemporalSchemaError):
            RelationSchema.temporal([("T1", TIME)])

    def test_snapshot_helper_rejects_time_attributes(self):
        with pytest.raises(TemporalSchemaError):
            RelationSchema.snapshot([("T1", TIME), ("T2", TIME)])


class TestSchemaQueries:
    def setup_method(self):
        self.schema = RelationSchema.temporal(
            [("EmpName", STRING), ("Dept", STRING)], name="EMPLOYEE"
        )

    def test_is_temporal(self):
        assert self.schema.is_temporal
        assert not RelationSchema.snapshot([("A", STRING)]).is_temporal

    def test_nontemporal_attributes(self):
        assert self.schema.nontemporal_attributes == ("EmpName", "Dept")

    def test_domain_of(self):
        assert self.schema.domain_of("Dept") is STRING
        with pytest.raises(SchemaError):
            self.schema.domain_of("Nope")

    def test_index_of(self):
        assert self.schema.index_of("Dept") == 1
        with pytest.raises(SchemaError):
            self.schema.index_of("Nope")

    def test_str_mentions_name_and_attributes(self):
        rendered = str(self.schema)
        assert "EMPLOYEE" in rendered
        assert "EmpName" in rendered


class TestSchemaDerivation:
    def setup_method(self):
        self.schema = RelationSchema.temporal(
            [("EmpName", STRING), ("Dept", STRING)], name="EMPLOYEE"
        )

    def test_project(self):
        projected = self.schema.project(["EmpName", "T1", "T2"])
        assert projected.attributes == ("EmpName", "T1", "T2")
        assert projected.is_temporal

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            self.schema.project(["Salary"])

    def test_drop_time_renames_reserved_attributes(self):
        demoted = self.schema.drop_time()
        assert demoted.attributes == ("EmpName", "Dept", "1.T1", "1.T2")
        assert not demoted.is_temporal

    def test_drop_time_on_snapshot_schema_is_identity(self):
        snapshot = RelationSchema.snapshot([("A", STRING)])
        assert snapshot.drop_time() is snapshot

    def test_with_time_appends_reserved_attributes(self):
        snapshot = RelationSchema.snapshot([("A", STRING)])
        temporal = snapshot.with_time()
        assert temporal.attributes == ("A", "T1", "T2")

    def test_concat_disambiguates_clashes(self):
        other = RelationSchema.temporal([("EmpName", STRING), ("Prj", STRING)])
        combined = self.schema.concat(other)
        assert "1.EmpName" in combined.attributes
        assert "2.EmpName" in combined.attributes
        assert "Dept" in combined.attributes
        assert "Prj" in combined.attributes

    def test_union_compatibility_ignores_order(self):
        a = RelationSchema.from_pairs([("A", STRING), ("B", INTEGER)])
        b = RelationSchema.from_pairs([("B", INTEGER), ("A", STRING)])
        assert a.is_union_compatible(b)

    def test_union_compatibility_requires_same_domains(self):
        a = RelationSchema.from_pairs([("A", STRING)])
        b = RelationSchema.from_pairs([("A", INTEGER)])
        assert not a.is_union_compatible(b)

    def test_equality_ignores_attribute_order_and_name(self):
        a = RelationSchema.from_pairs([("A", STRING), ("B", INTEGER)], name="X")
        b = RelationSchema.from_pairs([("B", INTEGER), ("A", STRING)], name="Y")
        assert a == b
        assert hash(a) == hash(b)

    def test_rename(self):
        renamed = self.schema.rename("STAFF")
        assert renamed.name == "STAFF"
        assert renamed == self.schema
