"""The σ(×) → ⋈ rewrite and the algorithm-based join cost model.

Three layers of guarantees:

* **rewrite correctness** — fusing a selection over a (temporal) product
  into a ``Join``/``TemporalJoin`` idiom node produces the *identical tuple
  sequence*, under both reference evaluation and the stratum's physical
  execution (hypothesis differential suite);
* **costing** — the idiom nodes are priced from the physical algorithm
  their predicate split selects, per engine, and whole-plan costing of the
  expanded σ-over-product form never exceeds the expanded two-node price
  (which keeps the memo search's per-shell costing exact);
* **agreement** — the memo search still finds exactly the exhaustive
  minimum on the join workload queries, and the chosen plans use the idiom
  nodes the rewrite introduces.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import (
    CostModel,
    Engine,
    choose_best_plan,
    cost_annotations,
    estimate_cost,
    measure_cost,
    minimal_operator_work,
    operator_work,
)
from repro.core.enumeration import enumerate_plans
from repro.core.equivalence import EquivalenceType
from repro.core.expressions import And, AttributeRef, Comparison, ComparisonOperator
from repro.core.operations import (
    BaseRelation,
    CartesianProduct,
    Join,
    LiteralRelation,
    Projection,
    Selection,
    TemporalCartesianProduct,
    TemporalJoin,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.rules import DEFAULT_RULES, JOIN_RULES
from repro.core.rules.join_rules import (
    FuseSelectionOverProduct,
    FuseSelectionOverTemporalProduct,
)
from repro.dbms.optimizer import CostGuidedConventionalOptimizer
from repro.search import search_best_plan
from repro.stratum import TemporalDatabase
from repro.workloads import (
    EMPLOYEE_SCHEMA,
    PROJECT_SCHEMA,
    employee_relation,
    equijoin_query,
    join_cascade_query,
    project_relation,
    temporal_join_query,
)

from .strategies import join_predicates, join_right_relations, temporal_relations

STATISTICS = {"EMPLOYEE": 5, "PROJECT": 8}


def _eq(a: str, b: str) -> Comparison:
    return Comparison(ComparisonOperator.EQ, AttributeRef(a), AttributeRef(b))


def _lt(a: str, b: str) -> Comparison:
    return Comparison(ComparisonOperator.LT, AttributeRef(a), AttributeRef(b))


def _scan_pair():
    return (
        BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA),
        BaseRelation("PROJECT", PROJECT_SCHEMA),
    )


def _context() -> EvaluationContext:
    return EvaluationContext(
        {"EMPLOYEE": employee_relation(), "PROJECT": project_relation()}
    )


# ---------------------------------------------------------------------------
# Rule mechanics
# ---------------------------------------------------------------------------


class TestJoinRules:
    def test_fuses_selection_over_product(self):
        left, right = _scan_pair()
        predicate = _eq("1.EmpName", "2.EmpName")
        node = Selection(predicate, CartesianProduct(left, right))
        result = FuseSelectionOverProduct().apply(node)
        assert result is not None
        assert isinstance(result.replacement, Join)
        assert result.replacement.predicate == predicate
        assert result.replacement.children == node.child.children

    def test_fuses_selection_over_temporal_product(self):
        left, right = _scan_pair()
        predicate = _eq("1.EmpName", "2.EmpName")
        node = Selection(predicate, TemporalCartesianProduct(left, right))
        result = FuseSelectionOverTemporalProduct().apply(node)
        assert result is not None
        assert isinstance(result.replacement, TemporalJoin)
        assert result.replacement.predicate == predicate

    def test_rules_do_not_match_other_shapes(self):
        left, right = _scan_pair()
        rule = FuseSelectionOverProduct()
        temporal_rule = FuseSelectionOverTemporalProduct()
        bare = CartesianProduct(left, right)
        over_projection = Selection(
            _eq("EmpName", "Dept"), Projection(["EmpName", "Dept"], left)
        )
        for node in (bare, over_projection, Join(_eq("1.EmpName", "2.EmpName"), left, right)):
            assert rule.apply(node) is None
            assert temporal_rule.apply(node) is None
        # Each rule only matches its own product flavour.
        conventional = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        temporal = Selection(
            _eq("1.EmpName", "2.EmpName"), TemporalCartesianProduct(left, right)
        )
        assert temporal_rule.apply(conventional) is None
        assert rule.apply(temporal) is None

    def test_rules_are_list_equivalences_in_the_default_set(self):
        for rule in JOIN_RULES:
            assert rule.equivalence is EquivalenceType.LIST
            assert rule in DEFAULT_RULES
        # The DBMS's own cost-guided fragment optimizer may fuse too.
        dbms_rule_names = {rule.name for rule in CostGuidedConventionalOptimizer().rules}
        assert {"σ×→⋈", "σ×T→⋈T"} <= dbms_rule_names

    def test_rewrite_is_size_decreasing(self):
        left, right = _scan_pair()
        node = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        replacement = FuseSelectionOverProduct().apply(node).replacement
        assert replacement.size() < node.size()


# ---------------------------------------------------------------------------
# Differential suite: rewritten plans produce the identical tuple sequence
# ---------------------------------------------------------------------------


@st.composite
def fusible_plans(draw):
    """A σ-over-(temporal)-product plan over literal relations."""
    left = LiteralRelation(draw(temporal_relations(max_size=6)))
    right = LiteralRelation(draw(join_right_relations(max_size=6)))
    temporal = draw(st.booleans())
    predicate = draw(join_predicates(temporal=temporal))
    product = (TemporalCartesianProduct if temporal else CartesianProduct)(left, right)
    return Selection(predicate, product)


class TestRewriteDifferential:
    @settings(max_examples=60, deadline=None)
    @given(plan=fusible_plans())
    def test_reference_evaluation_identical_tuple_sequence(self, plan):
        rule = (
            FuseSelectionOverTemporalProduct()
            if isinstance(plan.child, TemporalCartesianProduct)
            else FuseSelectionOverProduct()
        )
        rewritten = rule.apply(plan).replacement
        context = EvaluationContext()
        reference = plan.evaluate(context)
        fused = rewritten.evaluate(context)
        assert fused.schema.attributes == reference.schema.attributes
        assert list(fused.tuples) == list(reference.tuples)

    @settings(max_examples=60, deadline=None)
    @given(plan=fusible_plans())
    def test_stratum_execution_identical_tuple_sequence(self, plan):
        """The idiom node lowers onto the same physical operator as the
        fused σ-over-product: both paths must stay list-compatible with the
        reference semantics."""
        rule = (
            FuseSelectionOverTemporalProduct()
            if isinstance(plan.child, TemporalCartesianProduct)
            else FuseSelectionOverProduct()
        )
        rewritten = rule.apply(plan).replacement
        database = TemporalDatabase(optimize_queries=False)
        reference = plan.evaluate(EvaluationContext())
        assert list(database.run_plan(plan).tuples) == list(reference.tuples)
        assert list(database.run_plan(rewritten).tuples) == list(reference.tuples)


# ---------------------------------------------------------------------------
# The algorithm-based cost formulas
# ---------------------------------------------------------------------------


class TestJoinWorkFormulas:
    MODEL = CostModel()

    def _hash_join(self):
        left, right = _scan_pair()
        return Join(_eq("1.EmpName", "2.EmpName"), left, right)

    def _interval_join(self):
        left, right = _scan_pair()
        # Explicit ls < re ∧ rs < le overlap pair over the renamed periods.
        return Join(And(_lt("1.T1", "2.T2"), _lt("2.T1", "1.T2")), left, right)

    def _nested_loop_join(self):
        left, right = _scan_pair()
        return Join(_lt("1.T1", "2.T1"), left, right)

    def test_hash_join_is_probe_plus_weighted_build_plus_output(self):
        """Pin of the hash formula: probe + hash_build_weight·build + output.

        The build side is the *right* input (the physical operator builds on
        the right, probes with the left); building the table costs more per
        tuple than probing it, so the weight makes the optimizer prefer
        plans that build on the smaller input.
        """
        model = self.MODEL
        work = operator_work(self._hash_join(), (100.0, 200.0), 40.0, Engine.STRATUM)
        assert work == pytest.approx(100.0 + model.hash_build_weight * 200.0 + 40.0)

    def test_hash_build_weight_is_configurable(self):
        model = CostModel(hash_build_weight=3.5)
        work = operator_work(
            self._hash_join(), (100.0, 200.0), 40.0, Engine.STRATUM, model
        )
        assert work == pytest.approx(100.0 + 3.5 * 200.0 + 40.0)

    def test_hash_join_prefers_building_on_the_smaller_input(self):
        """With asymmetric inputs, build-on-small is strictly cheaper."""
        join = self._hash_join()
        build_small = operator_work(join, (200.0, 100.0), 40.0, Engine.STRATUM)
        build_large = operator_work(join, (100.0, 200.0), 40.0, Engine.STRATUM)
        assert build_small < build_large
        assert build_large - build_small == pytest.approx(
            (self.MODEL.hash_build_weight - 1.0) * 100.0
        )

    def test_interval_join_is_sort_plus_merge_plus_output(self):
        work = operator_work(self._interval_join(), (100.0, 200.0), 40.0, Engine.STRATUM)
        assert work == pytest.approx((100.0 + 200.0) * math.log2(200.0) + 40.0)

    def test_keyless_join_keeps_the_product_bound(self):
        work = operator_work(self._nested_loop_join(), (100.0, 200.0), 40.0, Engine.STRATUM)
        assert work == pytest.approx(100.0 * 200.0 + 40.0)

    def test_dbms_prices_the_hash_join_natively(self):
        model = self.MODEL
        work = operator_work(self._hash_join(), (100.0, 200.0), 40.0, Engine.DBMS)
        assert work == pytest.approx(
            (100.0 + model.hash_build_weight * 200.0 + 40.0) * model.dbms_speed
        )

    def test_dbms_prices_keyless_joins_as_filtered_products(self):
        """The substrate has no interval join: a keyless join runs there as a
        filter over the streamed product, so the product bound applies."""
        model = self.MODEL
        for join in (self._interval_join(), self._nested_loop_join()):
            work = operator_work(join, (100.0, 200.0), 40.0, Engine.DBMS)
            assert work == pytest.approx((100.0 * 200.0 + 40.0) * model.dbms_speed)

    def test_dbms_prices_temporal_joins_as_emulation(self):
        left, right = _scan_pair()
        join = TemporalJoin(_eq("1.EmpName", "2.EmpName"), left, right)
        model = self.MODEL
        work = operator_work(join, (100.0, 200.0), 40.0, Engine.DBMS)
        assert work == pytest.approx((100.0 * 200.0 + 40.0) * model.dbms_temporal_penalty)

    def test_nested_and_equi_conjuncts_hash_join_in_the_dbms(self):
        """Pricing and execution must find the same equi conjuncts: the DBMS
        executor flattens nested ``And`` nodes exactly like the split the
        cost model prices from, so a join priced as a hash join is executed
        as one (and never as a quadratic filter-over-product)."""
        from repro.core.expressions import Literal
        from repro.dbms.engine import ConventionalDBMS

        left, right = _scan_pair()
        nested = And(
            And(
                _eq("1.EmpName", "2.EmpName"),
                Comparison(ComparisonOperator.NE, AttributeRef("Dept"), Literal("Legal")),
            ),
            Comparison(ComparisonOperator.NE, AttributeRef("Prj"), Literal("P9")),
        )
        join = Join(nested, left, right)
        work = operator_work(join, (100.0, 200.0), 40.0, Engine.DBMS)
        assert work == pytest.approx(
            (100.0 + self.MODEL.hash_build_weight * 200.0 + 40.0) * self.MODEL.dbms_speed
        )
        dbms = ConventionalDBMS()
        dbms.load_relation("EMPLOYEE", employee_relation())
        dbms.load_relation("PROJECT", project_relation())
        physical = dbms.explain(join, optimize=False)
        assert "HashJoin" in physical
        assert "NestedLoopProduct" not in physical

    def test_minimal_operator_work_is_the_minimum_over_engines(self):
        for join in (self._hash_join(), self._interval_join(), self._nested_loop_join()):
            for cards in ((1.0, 2.0), (3.0, 2.0), (100.0, 200.0)):
                bound = minimal_operator_work(join, cards, 1.0, self.MODEL)
                per_engine = [
                    operator_work(join, cards, 1.0, engine, self.MODEL)
                    for engine in (Engine.STRATUM, Engine.DBMS)
                ]
                assert bound == pytest.approx(min(per_engine))
                assert all(bound <= work + 1e-12 for work in per_engine)

    def test_interval_work_monotone_in_inputs(self):
        join = self._interval_join()
        previous = 0.0
        for size in (2.0, 4.0, 16.0, 250.0):
            work = operator_work(join, (size, size), 0.0, Engine.STRATUM)
            assert work >= previous
            previous = work


# ---------------------------------------------------------------------------
# Whole-plan costing of the fused σ-over-product pair
# ---------------------------------------------------------------------------


class TestFusedPairCosting:
    def test_fused_product_line_is_free_and_sigma_carries_the_join(self):
        left, right = _scan_pair()
        plan = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        annotations = cost_annotations(plan, STATISTICS)
        assert annotations[(0,)].work == 0.0
        a, b = annotations[(0,)].input_cardinalities
        output = annotations[()].output_cardinality
        weight = CostModel().hash_build_weight
        assert annotations[()].work == pytest.approx(a + weight * b + output)

    def test_expanded_form_is_never_priced_above_the_two_node_form(self):
        """The cap that keeps memo-vs-exhaustive agreement exact."""
        left, right = _scan_pair()
        for product_type in (CartesianProduct, TemporalCartesianProduct):
            plan = Selection(_eq("1.EmpName", "2.EmpName"), product_type(left, right))
            fused_total = estimate_cost(plan, STATISTICS).total
            # Recompute the pair without fusion: product work plus σ work.
            annotations = cost_annotations(plan, STATISTICS)
            product_annotation = annotations[(0,)]
            pair_unfused = operator_work(
                plan.child,
                product_annotation.input_cardinalities,
                product_annotation.output_cardinality,
                Engine.STRATUM,
            ) + operator_work(
                plan,
                (product_annotation.output_cardinality,),
                annotations[()].output_cardinality,
                Engine.STRATUM,
            )
            leaf_cost = sum(
                annotations[path].work for path in ((0, 0), (0, 1))
            )
            assert fused_total <= leaf_cost + pair_unfused + 1e-9

    def test_fused_sigma_price_equals_the_idiom_node_price(self):
        """When the physical algorithm wins, σ(×) and ⋈ cost the same."""
        left, right = _scan_pair()
        expanded = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        idiom = Join(_eq("1.EmpName", "2.EmpName"), left, right)
        statistics = {"EMPLOYEE": 500, "PROJECT": 800}
        assert estimate_cost(expanded, statistics).total == pytest.approx(
            estimate_cost(idiom, statistics).total
        )

    def test_dbms_side_equi_pair_is_priced_as_the_hash_join_it_runs(self):
        """The DBMS executor fuses an equi σ(×) into a HashJoin; the fused
        pricing (estimated and measured) must follow it there — keyless and
        temporal pairs stay at the product bound the DBMS really pays."""
        model = CostModel()
        left, right = _scan_pair()
        equi = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        annotations = cost_annotations(equi, STATISTICS, engine=Engine.DBMS)
        assert annotations[(0,)].work == 0.0
        a, b = annotations[(0,)].input_cardinalities
        output = annotations[()].output_cardinality
        weight = model.hash_build_weight
        assert annotations[()].work == pytest.approx(
            (a + weight * b + output) * model.dbms_speed
        )
        measured = measure_cost(TransferToStratum(equi), _context())
        by_label = {label: work for (label, _, work) in measured.breakdown}
        employees, projects = employee_relation(), project_relation()
        result = equi.evaluate(_context())
        assert by_label[equi.child.label()] == 0.0
        assert by_label[equi.label()] == pytest.approx(
            (len(employees) + weight * len(projects) + len(result)) * model.dbms_speed
        )
        # A keyless pair is *not* fused by the DBMS: product bound stays.
        keyless = Selection(_lt("1.T1", "2.T1"), CartesianProduct(left, right))
        keyless_annotations = cost_annotations(keyless, STATISTICS, engine=Engine.DBMS)
        assert keyless_annotations[(0,)].work > 0.0

    def test_upper_bound_stays_attainable_without_the_join_rules(self):
        """Whole-plan costing prices a fused σ(×) below what the extraction
        can charge shell-wise; the search's upper bound must not inherit
        that price when the rule set cannot reach the ⋈ form, or every
        alternative (including the seed's own) gets pruned."""
        from repro.core.expressions import Literal
        from repro.core.query import QueryResultSpec
        from repro.core.rules import CONVENTIONAL_RULES

        left, right = _scan_pair()
        plan = Selection(
            Comparison(ComparisonOperator.EQ, AttributeRef("Dept"), Literal("Sales")),
            Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right)),
        )
        result = search_best_plan(
            plan,
            QueryResultSpec.multiset(),
            rules=CONVENTIONAL_RULES,  # no σ(×) → ⋈ rewrite available
            statistics={"EMPLOYEE": 500, "PROJECT": 800},
        )
        # The catalogue must still improve the seed (push the one-sided
        # conjunct into the product's left argument) instead of silently
        # pruning the whole frontier and returning the seed unchanged.
        assert result.rules_applied, result.best_plan.pretty()
        assert result.best_plan.signature() != plan.signature()

    def test_measure_cost_charges_the_fused_join_at_actuals(self):
        left, right = _scan_pair()
        plan = Selection(_eq("1.EmpName", "2.EmpName"), CartesianProduct(left, right))
        context = _context()
        measured = measure_cost(plan, context)
        by_label = {label: work for label, _, work in measured.breakdown}
        employees, projects = employee_relation(), project_relation()
        result = plan.evaluate(_context())
        assert by_label[plan.child.label()] == 0.0
        assert by_label[plan.label()] == pytest.approx(
            len(employees)
            + CostModel().hash_build_weight * len(projects)
            + len(result)
        )


# ---------------------------------------------------------------------------
# Memo-vs-exhaustive pins on the join workload queries
# ---------------------------------------------------------------------------


def _contains_idiom(plan) -> bool:
    return any(isinstance(node, (Join, TemporalJoin)) for _, node in plan.locations())


@pytest.mark.parametrize(
    "build", [equijoin_query, temporal_join_query, join_cascade_query],
    ids=["equijoin", "temporal-join", "join-cascade"],
)
class TestJoinQueryPins:
    def test_memo_matches_exhaustive_and_chooses_the_idiom(self, build):
        plan, spec = build()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        assert not enumeration.statistics.truncated
        _, exhaustive_cost = choose_best_plan(enumeration.plans, STATISTICS)
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        assert result.best_cost.total == pytest.approx(exhaustive_cost.total, rel=1e-12)
        assert _contains_idiom(result.best_plan), result.best_plan.pretty()
        assert result.best_plan in enumeration

    def test_chosen_plan_runs_list_compatibly_in_the_stratum(self, build):
        plan, spec = build()
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        database = TemporalDatabase(optimize_queries=False)
        database.register("EMPLOYEE", employee_relation())
        database.register("PROJECT", project_relation())
        produced = database.run_plan(result.best_plan)
        reference = result.best_plan.evaluate(database.evaluation_context())
        assert list(produced.tuples) == list(reference.tuples)


class TestAgreementWithoutTemporalStatistics:
    """⋈T and σ(×T) must estimate identically in *every* estimator state.

    With profiles but no temporal statistics the estimator has no pooled
    overlap fraction; both the temporal product and the temporal join then
    fall back to the estimator's ``fallback_overlap`` constant — never to
    the fully-constant model for one form only, which would price the two
    ≡L-equivalent shapes apart and cost the memo search its exactness.
    """

    def _workload(self):
        from repro.core.relation import Relation
        from repro.core.schema import INTEGER, RelationSchema
        from repro.stats import CardinalityEstimator

        schema_a = RelationSchema.temporal([("K", INTEGER)], name="A")
        schema_b = RelationSchema.temporal([("K", INTEGER)], name="B")
        rows_a = [(i % 7, 1 + i % 5, 6 + i % 5) for i in range(40)]
        rows_b = [(i % 3, 2 + i % 4, 8 + i % 4) for i in range(60)]
        relations = {
            "A": Relation.from_rows(schema_a, rows_a),
            "B": Relation.from_rows(schema_b, rows_b),
        }
        # Profile only the *value* columns: snapshot projections carry no
        # period statistics, so the pooled overlap fraction is None.
        snapshot = {
            name: Relation.from_rows(
                RelationSchema.snapshot([("K", INTEGER)], name=name),
                [(row[0],) for row in rows],
            )
            for name, rows in (("A", rows_a), ("B", rows_b))
        }
        estimator = CardinalityEstimator.from_relations(snapshot)
        assert estimator.overlap_fraction is None
        plan = TransferToStratum(
            Selection(
                _eq("1.K", "2.K"),
                TemporalCartesianProduct(
                    BaseRelation("A", schema_a), BaseRelation("B", schema_b)
                ),
            )
        )
        statistics = {name: len(relation) for name, relation in relations.items()}
        return plan, statistics, estimator

    def test_idiom_and_expansion_estimate_identically(self):
        from repro.core.cost import estimate_cardinality

        plan, statistics, estimator = self._workload()
        body = plan.child
        idiom = TemporalJoin(body.predicate, *body.child.children)
        assert estimate_cardinality(
            body, statistics, estimator=estimator
        ) == pytest.approx(estimate_cardinality(idiom, statistics, estimator=estimator))

    def test_tuned_model_overlap_is_honoured_without_temporal_statistics(self):
        """A caller-configured ``CostModel.overlap_fraction`` keeps steering
        temporal estimates even when the estimator has no temporal profile —
        the model's constant is handed down, not replaced by the default."""
        from repro.core.cost import estimate_cardinality

        plan, statistics, estimator = self._workload()
        product = plan.child.child
        tuned = CostModel(overlap_fraction=0.5)
        expected = (
            estimate_cardinality(product.children[0], statistics, tuned, estimator)
            * estimate_cardinality(product.children[1], statistics, tuned, estimator)
            * 0.5
        )
        assert estimate_cardinality(
            product, statistics, tuned, estimator
        ) == pytest.approx(expected)

    def test_memo_matches_exhaustive_without_overlap_statistics(self):
        from repro.core.query import QueryResultSpec

        plan, statistics, estimator = self._workload()
        spec = QueryResultSpec.multiset()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        assert not enumeration.statistics.truncated
        _, exhaustive_cost = choose_best_plan(
            enumeration.plans, statistics, estimator=estimator
        )
        result = search_best_plan(
            plan, spec, statistics=statistics, estimator=estimator
        )
        assert result.best_cost.total == pytest.approx(exhaustive_cost.total, rel=1e-12)
