"""Memo search vs. exhaustive enumeration: the oracle agreement tests.

For every workload query small enough to enumerate exhaustively, the memo
search must find exactly the minimum cost over the full enumerated plan
space — pruning and structure sharing may never lose the optimum.  The
chosen plans are additionally executed and checked against Definition 5.1.
"""

import pytest

from repro.core.applicability import results_acceptable
from repro.core.cost import choose_best_plan, estimate_cost
from repro.core.enumeration import enumerate_plans
from repro.core.operations.base import EvaluationContext
from repro.search import search_best_plan
from repro.stats import CardinalityEstimator
from repro.workloads import (
    employee_relation,
    fully_enumerable_queries,
    project_relation,
    skewed_paper_workload,
)

STATISTICS = {"EMPLOYEE": 5, "PROJECT": 8}

QUERIES = fully_enumerable_queries()

#: A skewed instance for the histogram-backed agreement variant: selectivity
#: and overlap estimates differ sharply from the fixed constants here, so a
#: pruning bug that only bites under data-driven costs would surface.
_SKEWED_EMPLOYEES, _SKEWED_PROJECTS = skewed_paper_workload(12)
SKEWED_RELATIONS = {"EMPLOYEE": _SKEWED_EMPLOYEES, "PROJECT": _SKEWED_PROJECTS}
SKEWED_STATISTICS = {name: len(relation) for name, relation in SKEWED_RELATIONS.items()}
ESTIMATOR = CardinalityEstimator.from_relations(SKEWED_RELATIONS)


@pytest.mark.parametrize("named", QUERIES, ids=[query.name for query in QUERIES])
class TestAgreementWithExhaustiveEnumeration:
    def test_best_cost_matches_exhaustive_minimum(self, named):
        plan, spec = named.build()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        assert not enumeration.statistics.truncated, "query is not fully enumerable"
        _, exhaustive_cost = choose_best_plan(enumeration.plans, STATISTICS)
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        assert result.best_cost.total == pytest.approx(exhaustive_cost.total, rel=1e-12)

    def test_best_plan_is_in_the_exhaustive_closure(self, named):
        plan, spec = named.build()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        # O(1) membership thanks to the signature index of EnumerationResult.
        assert result.best_plan in enumeration

    def test_chosen_plan_satisfies_definition_51(self, named):
        plan, spec = named.build()
        context = EvaluationContext(
            {"EMPLOYEE": employee_relation(), "PROJECT": project_relation()}
        )
        reference = plan.evaluate(context)
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        produced = result.best_plan.evaluate(context)
        assert results_acceptable(reference, produced, spec), result.best_plan.pretty()

    def test_reported_cost_is_the_plans_estimated_cost(self, named):
        plan, spec = named.build()
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        recomputed = estimate_cost(result.best_plan, STATISTICS)
        assert result.best_cost.total == pytest.approx(recomputed.total)

    def test_memo_considers_fewer_plans_than_exhaustive_generates(self, named):
        plan, spec = named.build()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        if len(enumeration) < 100:
            pytest.skip("sharing only pays off once the plan space fans out")
        result = search_best_plan(plan, spec, statistics=STATISTICS)
        assert result.statistics.plans_considered < len(enumeration)


@pytest.mark.parametrize("named", QUERIES, ids=[query.name for query in QUERIES])
class TestAgreementWithHistogramEstimates:
    """The agreement oracle re-run under data-driven (histogram) costs.

    The memo search's pruning must stay exact when the per-operator
    cardinalities come from the :mod:`repro.stats` estimator instead of the
    fixed constants — the estimator's estimates are monotone in the input
    cardinalities precisely so the branch-and-bound lower bounds stay
    admissible; this suite is the regression net for that contract.
    """

    def test_best_cost_matches_exhaustive_minimum(self, named):
        plan, spec = named.build()
        enumeration = enumerate_plans(plan, spec, max_plans=60000)
        assert not enumeration.statistics.truncated, "query is not fully enumerable"
        _, exhaustive_cost = choose_best_plan(
            enumeration.plans, SKEWED_STATISTICS, estimator=ESTIMATOR
        )
        result = search_best_plan(
            plan, spec, statistics=SKEWED_STATISTICS, estimator=ESTIMATOR
        )
        assert result.best_cost.total == pytest.approx(exhaustive_cost.total, rel=1e-12)

    def test_chosen_plan_satisfies_definition_51(self, named):
        plan, spec = named.build()
        context = EvaluationContext(SKEWED_RELATIONS)
        reference = plan.evaluate(context)
        result = search_best_plan(
            plan, spec, statistics=SKEWED_STATISTICS, estimator=ESTIMATOR
        )
        produced = result.best_plan.evaluate(context)
        assert results_acceptable(reference, produced, spec), result.best_plan.pretty()

    def test_estimates_are_data_driven(self, named):
        plan, _ = named.build()
        estimate = ESTIMATOR.estimate(plan)
        assert estimate.assumed_tables == frozenset()
        assert estimate.data_driven
