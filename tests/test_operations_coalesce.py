"""Tests for the coalescing operation (coalT)."""

from hypothesis import given

from repro.core.equivalence import snapshot_multiset_equivalent
from repro.core.operations import Coalescing, LiteralRelation, TemporalDuplicateElimination
from repro.core.operations.base import EvaluationContext
from repro.core.operations.coalesce import coalesce_tuples
from repro.core.relation import Relation
from repro.workloads import EMPLOYEE_NAME_SCHEMA

from .strategies import NARROW_TEMPORAL_SCHEMA, narrow_temporal_relations, temporal_relations

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


def rel(*rows):
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


class TestCoalescing:
    def test_merges_adjacent_value_equivalent_tuples(self):
        result = run(Coalescing(LiteralRelation(rel(("a", 1, 3), ("a", 3, 5)))))
        assert [(tup["T1"], tup["T2"]) for tup in result] == [(1, 5)]

    def test_chains_of_adjacency_merge_fully(self):
        result = run(Coalescing(LiteralRelation(rel(("a", 1, 3), ("a", 5, 7), ("a", 3, 5)))))
        assert [(tup["T1"], tup["T2"]) for tup in result] == [(1, 7)]

    def test_overlapping_periods_are_not_merged(self):
        """Minimality (Section 2.2): coalescing has no effect on snapshot duplicates."""
        relation = rel(("a", 1, 4), ("a", 3, 6))
        result = run(Coalescing(LiteralRelation(relation)))
        assert result.as_list() == relation.as_list()

    def test_different_values_are_not_merged(self):
        relation = rel(("a", 1, 3), ("b", 3, 5))
        result = run(Coalescing(LiteralRelation(relation)))
        assert result.as_list() == relation.as_list()

    def test_retains_regular_duplicates(self):
        relation = rel(("a", 1, 3), ("a", 1, 3))
        result = run(Coalescing(LiteralRelation(relation)))
        # Identical periods overlap, so they are not merged: duplicates stay.
        assert result.cardinality == 2

    def test_merged_tuple_takes_position_of_earliest_participant(self):
        relation = rel(("b", 1, 2), ("a", 5, 7), ("b", 9, 10), ("a", 3, 5))
        result = run(Coalescing(LiteralRelation(relation)))
        assert [(tup["Name"], tup["T1"], tup["T2"]) for tup in result] == [
            ("b", 1, 2),
            ("a", 3, 7),
            ("b", 9, 10),
        ]

    def test_empty_relation(self):
        assert run(Coalescing(LiteralRelation(Relation.empty(NARROW_TEMPORAL_SCHEMA)))).is_empty()

    def test_composition_with_rdupt_gives_maximal_periods(self):
        """coalT(rdupT(r)) achieves the effect of the Böhlen et al. coalescing."""
        relation = rel(("a", 1, 4), ("a", 3, 6), ("a", 6, 8))
        composed = run(
            Coalescing(TemporalDuplicateElimination(LiteralRelation(relation)))
        )
        assert [(tup["T1"], tup["T2"]) for tup in composed] == [(1, 8)]


class TestCoalescingProperties:
    @given(narrow_temporal_relations())
    def test_result_is_coalesced(self, relation):
        result = run(Coalescing(LiteralRelation(relation)))
        assert result.is_coalesced()

    @given(narrow_temporal_relations())
    def test_snapshot_multiset_equivalent_to_argument(self, relation):
        """Rule C2: coalT(r) ≡SM r."""
        result = run(Coalescing(LiteralRelation(relation)))
        if relation.is_empty():
            assert result.is_empty()
        else:
            assert snapshot_multiset_equivalent(result, relation)

    @given(narrow_temporal_relations())
    def test_never_increases_cardinality(self, relation):
        result = run(Coalescing(LiteralRelation(relation)))
        assert result.cardinality <= relation.cardinality

    @given(narrow_temporal_relations())
    def test_idempotent(self, relation):
        once = run(Coalescing(LiteralRelation(relation)))
        twice = run(Coalescing(LiteralRelation(once)))
        assert once.as_list() == twice.as_list()

    @given(narrow_temporal_relations())
    def test_preserves_regular_duplicate_freedom(self, relation):
        """Table 1: coalescing retains duplicates (never creates them).

        The retention guarantee presumes the paper's usage assumption that
        the argument has no duplicates in snapshots (otherwise merging two
        adjacent periods can recreate an existing tuple).
        """
        if relation.has_duplicates() or relation.has_snapshot_duplicates():
            return
        result = run(Coalescing(LiteralRelation(relation)))
        assert not result.has_duplicates()


def _coalesce_global_scan(tuples):
    """The historical reference formulation: the earliest-pair-first fixpoint
    re-scanning the *whole* list after every merge.  Kept here verbatim as the
    regression oracle for the per-equivalence-class rewrite of
    ``coalesce_tuples``, whose output must stay byte-identical."""
    entries = [[index, tup] for index, tup in enumerate(tuples)]
    changed = True
    while changed:
        changed = False
        for i in range(len(entries)):
            if changed:
                break
            for j in range(i + 1, len(entries)):
                first, second = entries[i][1], entries[j][1]
                if not first.value_equivalent(second):
                    continue
                if not first.period.is_adjacent_to(second.period):
                    continue
                merged_period = first.period.merge(second.period)
                entries[i] = [min(entries[i][0], entries[j][0]), first.with_period(merged_period)]
                del entries[j]
                changed = True
                break
    entries.sort(key=lambda entry: entry[0])
    return [entry[1] for entry in entries]


class TestPerClassFixpointMatchesGlobalScan:
    """The per-class restart optimisation is byte-identical to the old scan."""

    @given(narrow_temporal_relations(max_size=10))
    def test_narrow_relations(self, relation):
        tuples = list(relation.tuples)
        assert coalesce_tuples(tuples) == _coalesce_global_scan(tuples)

    @given(temporal_relations(max_size=10))
    def test_wide_relations(self, relation):
        tuples = list(relation.tuples)
        assert coalesce_tuples(tuples) == _coalesce_global_scan(tuples)

    def test_interleaved_classes_keep_global_positions(self):
        relation = rel(("b", 1, 2), ("a", 5, 7), ("b", 2, 4), ("a", 3, 5), ("c", 1, 2))
        assert [
            (tup["Name"], tup["T1"], tup["T2"])
            for tup in coalesce_tuples(list(relation.tuples))
        ] == [("b", 1, 4), ("a", 3, 7), ("c", 1, 2)]
