"""Tests for the Cartesian products, joins and (temporal) aggregation."""

import pytest
from hypothesis import given

from repro.core.exceptions import TemporalSchemaError
from repro.core.expressions import agg_sum, count, equals, attribute, Comparison, ComparisonOperator
from repro.core.operations import (
    Aggregation,
    CartesianProduct,
    Join,
    LiteralRelation,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalJoin,
)
from repro.core.operations.base import EvaluationContext
from repro.core.period import Period
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.workloads import employee_relation, project_relation

from .strategies import narrow_temporal_relations

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


SALARY_SCHEMA = RelationSchema.temporal([("EmpName", STRING), ("Salary", INTEGER)], name="SALARY")


def salaries():
    return Relation.from_rows(
        SALARY_SCHEMA,
        [("John", 10, 1, 6), ("John", 12, 6, 11), ("Anna", 20, 2, 6), ("Anna", 25, 6, 12)],
    )


class TestCartesianProduct:
    def test_pairs_every_tuple(self, employee, project):
        result = run(CartesianProduct(LiteralRelation(employee), LiteralRelation(project)))
        assert result.cardinality == len(employee) * len(project)

    def test_clashing_attributes_are_prefixed(self, employee, project):
        result = run(CartesianProduct(LiteralRelation(employee), LiteralRelation(project)))
        assert "1.EmpName" in result.schema.attributes
        assert "2.EmpName" in result.schema.attributes

    def test_temporal_arguments_yield_snapshot_result(self, employee, project):
        product = CartesianProduct(LiteralRelation(employee), LiteralRelation(project))
        assert not product.output_schema().is_temporal

    def test_snapshot_arguments_keep_names(self):
        left = RelationSchema.snapshot([("A", STRING)])
        right = RelationSchema.snapshot([("B", STRING)])
        product = CartesianProduct(
            LiteralRelation(Relation.from_rows(left, [("x",)])),
            LiteralRelation(Relation.from_rows(right, [("y",)])),
        )
        result = run(product)
        assert result.schema.attributes == ("A", "B")
        assert result[0]["A"] == "x" and result[0]["B"] == "y"


class TestTemporalCartesianProduct:
    def test_joins_only_overlapping_periods(self):
        result = run(
            TemporalCartesianProduct(
                LiteralRelation(employee_relation()), LiteralRelation(salaries())
            )
        )
        for tup in result:
            assert Period(tup["1.T1"], tup["1.T2"]).overlaps(Period(tup["2.T1"], tup["2.T2"]))

    def test_result_period_is_the_intersection(self):
        result = run(
            TemporalCartesianProduct(
                LiteralRelation(employee_relation()), LiteralRelation(salaries())
            )
        )
        for tup in result:
            expected = Period(tup["1.T1"], tup["1.T2"]).intersect(
                Period(tup["2.T1"], tup["2.T2"])
            )
            assert tup.period == expected

    def test_retains_argument_timestamps(self):
        product = TemporalCartesianProduct(
            LiteralRelation(employee_relation()), LiteralRelation(salaries())
        )
        schema = product.output_schema()
        for attribute_name in ("1.T1", "1.T2", "2.T1", "2.T2", "T1", "T2"):
            assert schema.has_attribute(attribute_name)
        assert schema.is_temporal

    def test_disjoint_periods_produce_nothing(self):
        left = Relation.from_rows(SALARY_SCHEMA, [("John", 1, 1, 3)])
        right = Relation.from_rows(
            RelationSchema.temporal([("Dept", STRING)], name="D"), [("Sales", 5, 9)]
        )
        result = run(TemporalCartesianProduct(LiteralRelation(left), LiteralRelation(right)))
        assert result.is_empty()


class TestJoins:
    def test_join_is_selection_over_product(self, employee, project):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        join = Join(predicate, LiteralRelation(employee), LiteralRelation(project))
        expanded = join.expand()
        assert run(join).as_multiset() == run(expanded).as_multiset()

    def test_temporal_join_matches_expansion(self, employee, project):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        join = TemporalJoin(predicate, LiteralRelation(employee), LiteralRelation(project))
        assert run(join).as_multiset() == run(join.expand()).as_multiset()

    def test_temporal_join_produces_overlap_periods(self, employee, project):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        join = TemporalJoin(predicate, LiteralRelation(employee), LiteralRelation(project))
        result = run(join)
        assert result.cardinality > 0
        for tup in result:
            assert tup["1.EmpName"] == tup["2.EmpName"]


class TestAggregation:
    def test_group_and_count(self, employee):
        aggregation = Aggregation(["EmpName"], [count(alias="n")], LiteralRelation(employee))
        result = run(aggregation)
        values = {tup["EmpName"]: tup["n"] for tup in result}
        assert values == {"John": 2, "Anna": 3}

    def test_groups_emitted_in_first_occurrence_order(self, employee):
        aggregation = Aggregation(["EmpName"], [count()], LiteralRelation(employee))
        result = run(aggregation)
        assert [tup["EmpName"] for tup in result] == ["John", "Anna"]

    def test_global_aggregate(self, employee):
        aggregation = Aggregation([], [count(alias="n")], LiteralRelation(employee))
        result = run(aggregation)
        assert result.cardinality == 1
        assert result[0]["n"] == 5

    def test_grouping_on_time_attribute_renames_output(self, employee):
        aggregation = Aggregation(["T1"], [count(alias="n")], LiteralRelation(employee))
        schema = aggregation.output_schema()
        assert "1.T1" in schema.attributes
        assert not schema.is_temporal

    def test_eliminates_duplicates(self, employee):
        aggregation = Aggregation(["Dept"], [count()], LiteralRelation(employee))
        assert not run(aggregation).has_duplicates()


class TestTemporalAggregation:
    def test_requires_temporal_argument(self):
        snapshot = Relation.from_rows(RelationSchema.snapshot([("A", STRING)]), [("x",)])
        aggregation = TemporalAggregation([], [count()], LiteralRelation(snapshot))
        with pytest.raises(TemporalSchemaError):
            aggregation.output_schema()

    def test_rejects_time_attributes_in_grouping(self, employee):
        with pytest.raises(TemporalSchemaError):
            TemporalAggregation(["T1"], [count()], LiteralRelation(employee))

    def test_counts_vary_over_time(self, employee):
        aggregation = TemporalAggregation([], [count(alias="n")], LiteralRelation(employee))
        result = run(aggregation)
        # At month 3, John (Sales) and Anna (Sales + Advertising) are employed: 3 rows.
        by_point = {}
        for tup in result:
            for point in tup.period.points():
                by_point[point] = tup["n"]
        assert by_point[3] == 3
        assert by_point[11] == 1  # only Anna (Sales, [6,12)) remains in month 11

    def test_snapshot_reducibility(self, employee):
        """γT is snapshot reducible to γ: counts per snapshot agree."""
        aggregation = TemporalAggregation(
            ["Dept"], [count(alias="n")], LiteralRelation(employee)
        )
        result = run(aggregation)
        for time in employee.active_time_points():
            snapshot = employee.snapshot(time)
            expected = {}
            for tup in snapshot:
                expected[tup["Dept"]] = expected.get(tup["Dept"], 0) + 1
            actual = {
                tup["Dept"]: tup["n"] for tup in result if tup.period.contains_point(time)
            }
            assert actual == expected

    def test_sum_aggregate(self):
        aggregation = TemporalAggregation(
            [], [agg_sum("Salary", alias="total")], LiteralRelation(salaries())
        )
        result = run(aggregation)
        by_point = {}
        for tup in result:
            for point in tup.period.points():
                by_point[point] = tup["total"]
        assert by_point[3] == 30  # John 10 + Anna 20
        assert by_point[7] == 37  # John 12 + Anna 25

    @given(narrow_temporal_relations(max_size=6))
    def test_cardinality_bound(self, relation):
        aggregation = TemporalAggregation([], [count()], LiteralRelation(relation))
        result = run(aggregation)
        if relation.is_empty():
            assert result.is_empty()
        else:
            assert result.cardinality <= 2 * relation.cardinality - 1
