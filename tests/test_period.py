"""Unit and property tests for closed-open periods and period arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import PeriodError
from repro.core.period import (
    Period,
    coalesce_periods,
    intersect_all,
    periods_cover_same_points,
    span,
    subtract_periods,
)


def make_period(start, end):
    return Period(start, end)


class TestPeriodConstruction:
    def test_valid_period(self):
        period = Period(1, 8)
        assert period.start == 1
        assert period.end == 8
        assert period.duration == 7

    def test_empty_period_rejected(self):
        with pytest.raises(PeriodError):
            Period(5, 5)

    def test_negative_duration_rejected(self):
        with pytest.raises(PeriodError):
            Period(8, 1)

    def test_periods_are_ordered_lexicographically(self):
        assert Period(1, 3) < Period(1, 4) < Period(2, 3)

    def test_str(self):
        assert str(Period(2, 6)) == "[2, 6)"


class TestPointMembership:
    def test_contains_start(self):
        assert Period(1, 8).contains_point(1)

    def test_excludes_end(self):
        assert not Period(1, 8).contains_point(8)

    def test_contains_interior(self):
        assert Period(1, 8).contains_point(5)

    def test_points_enumerates_granules(self):
        assert list(Period(3, 6).points()) == [3, 4, 5]

    def test_contains_period(self):
        assert Period(1, 10).contains(Period(3, 5))
        assert not Period(3, 5).contains(Period(1, 10))
        assert Period(3, 5).contains(Period(3, 5))


class TestRelationships:
    def test_overlap(self):
        assert Period(1, 8).overlaps(Period(6, 11))
        assert Period(6, 11).overlaps(Period(1, 8))

    def test_adjacent_periods_do_not_overlap(self):
        assert not Period(1, 6).overlaps(Period(6, 12))

    def test_adjacency(self):
        assert Period(2, 6).is_adjacent_to(Period(6, 12))
        assert Period(6, 12).is_adjacent_to(Period(2, 6))
        assert not Period(2, 6).is_adjacent_to(Period(7, 12))
        assert not Period(2, 6).is_adjacent_to(Period(5, 12))

    def test_overlaps_or_adjacent(self):
        assert Period(1, 3).overlaps_or_adjacent(Period(3, 5))
        assert Period(1, 4).overlaps_or_adjacent(Period(3, 5))
        assert not Period(1, 3).overlaps_or_adjacent(Period(4, 5))

    def test_precedes(self):
        assert Period(1, 3).precedes(Period(3, 5))
        assert not Period(1, 4).precedes(Period(3, 5))


class TestConstructiveOperations:
    def test_intersection(self):
        assert Period(1, 8).intersect(Period(6, 11)) == Period(6, 8)

    def test_disjoint_intersection_is_none(self):
        assert Period(1, 3).intersect(Period(5, 8)) is None
        assert Period(1, 3).intersect(Period(3, 8)) is None

    def test_merge_adjacent(self):
        assert Period(2, 6).merge(Period(6, 12)) == Period(2, 12)

    def test_merge_overlapping(self):
        assert Period(1, 8).merge(Period(6, 11)) == Period(1, 11)

    def test_merge_disjoint_rejected(self):
        with pytest.raises(PeriodError):
            Period(1, 3).merge(Period(5, 8))

    def test_subtract_disjoint(self):
        assert Period(1, 3).subtract(Period(5, 8)) == [Period(1, 3)]

    def test_subtract_covering(self):
        assert Period(3, 5).subtract(Period(1, 8)) == []

    def test_subtract_prefix(self):
        # The Figure 3 case: [6, 11) minus [1, 8) leaves [8, 11).
        assert Period(6, 11).subtract(Period(1, 8)) == [Period(8, 11)]

    def test_subtract_suffix(self):
        assert Period(1, 8).subtract(Period(6, 11)) == [Period(1, 6)]

    def test_subtract_interior_splits(self):
        assert Period(1, 10).subtract(Period(4, 6)) == [Period(1, 4), Period(6, 10)]


class TestCollections:
    def test_coalesce_merges_adjacent_and_overlapping(self):
        merged = coalesce_periods([Period(6, 12), Period(1, 4), Period(4, 7)])
        assert merged == [Period(1, 12)]

    def test_coalesce_keeps_gaps(self):
        merged = coalesce_periods([Period(1, 3), Period(5, 7)])
        assert merged == [Period(1, 3), Period(5, 7)]

    def test_coalesce_empty(self):
        assert coalesce_periods([]) == []

    def test_subtract_periods_multiple(self):
        remaining = subtract_periods(Period(1, 12), [Period(2, 3), Period(5, 6), Period(9, 10)])
        assert remaining == [Period(1, 2), Period(3, 5), Period(6, 9), Period(10, 12)]

    def test_subtract_periods_complete_cover(self):
        assert subtract_periods(Period(1, 5), [Period(1, 3), Period(3, 5)]) == []

    def test_intersect_all(self):
        assert intersect_all([Period(1, 8), Period(3, 10), Period(2, 6)]) == Period(3, 6)
        assert intersect_all([Period(1, 3), Period(5, 8)]) is None
        assert intersect_all([]) is None

    def test_span(self):
        assert span([Period(3, 5), Period(1, 2), Period(8, 9)]) == Period(1, 9)
        assert span([]) is None

    def test_cover_same_points(self):
        assert periods_cover_same_points([Period(1, 3), Period(3, 5)], [Period(1, 5)])
        assert not periods_cover_same_points([Period(1, 3)], [Period(1, 4)])


@st.composite
def small_periods(draw):
    start = draw(st.integers(min_value=0, max_value=20))
    length = draw(st.integers(min_value=1, max_value=10))
    return Period(start, start + length)


class TestPeriodProperties:
    @given(small_periods(), small_periods())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(small_periods(), small_periods())
    def test_overlap_iff_common_point(self, a, b):
        common = set(a.points()) & set(b.points())
        assert a.overlaps(b) == bool(common)

    @given(small_periods(), small_periods())
    def test_subtraction_covers_exactly_the_remaining_points(self, a, b):
        remaining = a.subtract(b)
        expected = set(a.points()) - set(b.points())
        actual = set()
        for piece in remaining:
            actual |= set(piece.points())
        assert actual == expected

    @given(small_periods(), small_periods())
    def test_intersection_covers_common_points(self, a, b):
        intersection = a.intersect(b)
        common = set(a.points()) & set(b.points())
        if intersection is None:
            assert not common
        else:
            assert set(intersection.points()) == common

    @given(st.lists(small_periods(), max_size=8))
    def test_coalesce_preserves_points_and_is_canonical(self, periods):
        merged = coalesce_periods(periods)
        original_points = set()
        for period in periods:
            original_points |= set(period.points())
        merged_points = set()
        for period in merged:
            merged_points |= set(period.points())
        assert merged_points == original_points
        # Canonical form: sorted, pairwise disjoint and non-adjacent.
        for earlier, later in zip(merged, merged[1:]):
            assert earlier.end < later.start

    @given(st.lists(small_periods(), max_size=8))
    def test_coalesce_is_idempotent(self, periods):
        merged = coalesce_periods(periods)
        assert coalesce_periods(merged) == merged
