"""Unit tests for leaves, selection, projection, sorting and transfers."""

import pytest

from repro.core.exceptions import ArityError, EvaluationError, TemporalSchemaError
from repro.core.expressions import (
    Arithmetic,
    ArithmeticOperator,
    ProjectionItem,
    attribute,
    equals,
    greater_than,
    literal,
)
from repro.core.operations import (
    BaseRelation,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TransferToDBMS,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.workloads import EMPLOYEE_SCHEMA, employee_relation


@pytest.fixture
def context(employee):
    return EvaluationContext({"EMPLOYEE": employee})


@pytest.fixture
def scan():
    return BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)


class TestLeaves:
    def test_base_relation_lookup(self, scan, context, employee):
        assert scan.evaluate(context).as_list() == employee.as_list()

    def test_base_relation_missing_binding(self, scan):
        with pytest.raises(EvaluationError):
            scan.evaluate(EvaluationContext())

    def test_base_relation_schema_mismatch(self, scan):
        from repro.workloads import project_relation

        with pytest.raises(EvaluationError):
            scan.evaluate(EvaluationContext({"EMPLOYEE": project_relation()}))

    def test_base_relation_known_order(self, context, employee):
        ordered = BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA, OrderSpec.ascending("EmpName"))
        assert ordered.evaluate(context).order == OrderSpec.ascending("EmpName")

    def test_literal_relation(self, employee):
        literal_node = LiteralRelation(employee)
        assert literal_node.evaluate(EvaluationContext()) == employee
        assert literal_node.cardinality_bounds([]) == (5, 5)

    def test_leaves_take_no_children(self, scan, employee):
        with pytest.raises(EvaluationError):
            scan.with_children([LiteralRelation(employee)])

    def test_arity_enforced(self, scan):
        with pytest.raises(ArityError):
            TransferToStratum()
        with pytest.raises(ArityError):
            TransferToStratum(scan, scan)


class TestSelection:
    def test_filters_tuples(self, scan, context):
        selection = Selection(equals("Dept", "Sales"), scan)
        result = selection.evaluate(context)
        assert [tup["EmpName"] for tup in result] == ["John", "Anna", "Anna"]

    def test_preserves_order_of_survivors(self, scan, context):
        selection = Selection(greater_than("T1", 1), scan)
        result = selection.evaluate(context)
        assert [tup["T1"] for tup in result] == [6, 2, 2, 6]

    def test_schema_unchanged(self, scan):
        selection = Selection(equals("Dept", "Sales"), scan)
        assert selection.output_schema() == EMPLOYEE_SCHEMA

    def test_label(self, scan):
        assert "Dept" in Selection(equals("Dept", "Sales"), scan).label()


class TestProjection:
    def test_projects_columns(self, scan, context):
        projection = Projection(["EmpName", "T1", "T2"], scan)
        result = projection.evaluate(context)
        assert result.schema.attributes == ("EmpName", "T1", "T2")
        assert result.cardinality == 5

    def test_computed_column(self, scan, context):
        duration = ProjectionItem(
            Arithmetic(ArithmeticOperator.SUB, attribute("T2"), attribute("T1")),
            alias="Duration",
        )
        projection = Projection(["EmpName", duration], scan)
        result = projection.evaluate(context)
        assert result[0]["Duration"] == 7

    def test_keeping_only_one_time_attribute_is_rejected(self, scan):
        with pytest.raises(TemporalSchemaError):
            Projection(["EmpName", "T1"], scan).output_schema()

    def test_dropping_time_yields_snapshot_schema(self, scan, context):
        projection = Projection(["EmpName", "Dept"], scan)
        assert not projection.output_schema().is_temporal
        assert projection.evaluate(context).cardinality == 5

    def test_duplicate_generation(self, scan, context):
        projection = Projection(["Dept"], scan)
        result = projection.evaluate(context)
        assert result.has_duplicates()

    def test_order_derivation_prefix(self, scan):
        projection = Projection(["EmpName", "T1", "T2"], scan)
        incoming = OrderSpec.ascending("EmpName", "Dept", "T1")
        assert projection.result_order([incoming]) == OrderSpec.ascending("EmpName")


class TestSort:
    def test_sorts_by_specification(self, scan, context):
        sort = Sort(OrderSpec.ascending("EmpName", "T1"), scan)
        result = sort.evaluate(context)
        assert [tup["EmpName"] for tup in result] == ["Anna", "Anna", "Anna", "John", "John"]
        assert result.order == OrderSpec.ascending("EmpName", "T1")

    def test_sort_is_stable(self, scan, context):
        sort = Sort(OrderSpec.ascending("EmpName"), scan)
        result = sort.evaluate(context)
        # Anna's three tuples keep their original relative order.
        anna = [tup["Dept"] for tup in result if tup["EmpName"] == "Anna"]
        assert anna == ["Sales", "Advertising", "Sales"]

    def test_result_order_prefix_special_case(self, scan):
        sort = Sort(OrderSpec.ascending("EmpName"), scan)
        existing = OrderSpec.ascending("EmpName", "T1")
        # Table 1: when A is a prefix of Order(r), the sort keeps Order(r).
        assert sort.result_order([existing]) == existing


class TestTransfers:
    def test_transfers_are_identities(self, scan, context, employee):
        plan = TransferToStratum(TransferToDBMS(scan))
        assert plan.evaluate(context).as_list() == employee.as_list()

    def test_transfer_schema(self, scan):
        assert TransferToStratum(scan).output_schema() == EMPLOYEE_SCHEMA


class TestTreeNavigation:
    def test_locations_and_subtree_at(self, scan):
        plan = Sort(OrderSpec.ascending("EmpName"), Selection(equals("Dept", "Sales"), scan))
        paths = [path for path, _ in plan.locations()]
        assert paths == [(), (0,), (0, 0)]
        assert plan.subtree_at((0, 0)) is scan

    def test_replace_at(self, scan, context):
        plan = Sort(OrderSpec.ascending("EmpName"), Selection(equals("Dept", "Sales"), scan))
        replaced = plan.replace_at((0,), scan)
        assert replaced == Sort(OrderSpec.ascending("EmpName"), scan)
        # The original plan is unchanged (plans are immutable values).
        assert plan.subtree_at((0,)) != scan

    def test_structural_equality_and_hash(self, scan):
        a = Selection(equals("Dept", "Sales"), scan)
        b = Selection(equals("Dept", "Sales"), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        c = Selection(equals("Dept", "Ads"), scan)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_size_and_contains_operator(self, scan):
        plan = Sort(OrderSpec.ascending("EmpName"), Selection(equals("Dept", "Sales"), scan))
        assert plan.size() == 3
        assert plan.contains_operator(Selection)
        assert not plan.contains_operator(Projection)

    def test_base_relation_names(self, scan):
        plan = Selection(equals("Dept", "Sales"), scan)
        assert plan.base_relation_names() == ["EMPLOYEE"]

    def test_pretty_renders_tree(self, scan):
        plan = Sort(OrderSpec.ascending("EmpName"), Selection(equals("Dept", "Sales"), scan))
        rendered = plan.pretty()
        assert "sort" in rendered and "EMPLOYEE" in rendered
        assert rendered.count("\n") == 2
