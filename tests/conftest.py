"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.operations import BaseRelation
from repro.core.operations.base import EvaluationContext
from repro.dbms import ConventionalDBMS
from repro.stratum import TemporalDatabase
from repro.workloads import (
    EMPLOYEE_SCHEMA,
    PROJECT_SCHEMA,
    employee_relation,
    expected_result_relation,
    figure3_r1,
    figure3_r3,
    project_relation,
)

@pytest.fixture(autouse=True)
def _reset_faults():
    """Disarm any fault left armed by a test — fault state is process-wide."""
    yield
    from repro.faults import FAULTS

    if FAULTS.active:
        FAULTS.reset()


#: The paper's motivating statement, in the front end's temporal SQL dialect.
PAPER_STATEMENT = (
    "SELECT DISTINCT EmpName FROM EMPLOYEE "
    "EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
    "ORDER BY EmpName COALESCE"
)


@pytest.fixture
def employee():
    """The EMPLOYEE relation of Figure 1."""
    return employee_relation()


@pytest.fixture
def project():
    """The PROJECT relation of Figure 1."""
    return project_relation()


@pytest.fixture
def expected_result():
    """The Result relation of Figure 1."""
    return expected_result_relation()


@pytest.fixture
def r1():
    """Relation R1 of Figure 3."""
    return figure3_r1()


@pytest.fixture
def r3():
    """Relation R3 of Figure 3 (rdupT(R1))."""
    return figure3_r3()


@pytest.fixture
def paper_context(employee, project):
    """Reference-evaluation context binding EMPLOYEE and PROJECT."""
    return EvaluationContext({"EMPLOYEE": employee, "PROJECT": project})


@pytest.fixture
def employee_scan():
    """A BaseRelation leaf for EMPLOYEE."""
    return BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)


@pytest.fixture
def project_scan():
    """A BaseRelation leaf for PROJECT."""
    return BaseRelation("PROJECT", PROJECT_SCHEMA)


@pytest.fixture
def dbms(employee, project):
    """A conventional DBMS holding the paper's base tables."""
    engine = ConventionalDBMS()
    engine.load_relation("EMPLOYEE", employee)
    engine.load_relation("PROJECT", project)
    return engine


@pytest.fixture
def temporal_db(employee, project):
    """A TemporalDatabase holding the paper's base tables."""
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee)
    database.register("PROJECT", project)
    return database


@pytest.fixture
def paper_statement():
    """The motivating query as a temporal SQL statement."""
    return PAPER_STATEMENT
