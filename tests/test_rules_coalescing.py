"""Unit tests for the coalescing rules C1–C10 (Figure 4)."""

from repro.core.equivalence import (
    list_equivalent,
    multiset_equivalent,
    set_equivalent,
    snapshot_multiset_equivalent,
)
from repro.core.expressions import equals, greater_than
from repro.core.operations import (
    Coalescing,
    LiteralRelation,
    Projection,
    Selection,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    UnionAll,
)
from repro.core.expressions import count
from repro.core.operations.base import EvaluationContext
from repro.core.relation import Relation
from repro.core.rules import rules_by_name
from repro.core.schema import RelationSchema, STRING
from repro.workloads import figure3_r1, figure3_r3

from .strategies import NARROW_TEMPORAL_SCHEMA

CONTEXT = EvaluationContext()
RULES = rules_by_name()


def run(op):
    return op.evaluate(CONTEXT)


def trel(*rows):
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


def dedup(node):
    return TemporalDuplicateElimination(node)


class TestC1:
    def test_removes_redundant_coalescing(self):
        coalesced = LiteralRelation(trel(("a", 1, 5), ("b", 2, 4)))
        plan = Coalescing(coalesced)
        application = RULES["C1"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_coalesced_argument(self):
        plan = Coalescing(LiteralRelation(trel(("a", 1, 3), ("a", 3, 5))))
        assert RULES["C1"].apply(plan) is None

    def test_matches_above_another_coalescing(self, r1):
        plan = Coalescing(Coalescing(LiteralRelation(r1)))
        application = RULES["C1"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))


class TestC2:
    def test_drop_coalescing_preserves_snapshots(self, r1):
        plan = Coalescing(LiteralRelation(r1))
        application = RULES["C2"].apply(plan)
        assert application is not None
        assert snapshot_multiset_equivalent(run(plan), run(application.replacement))

    def test_not_necessarily_multiset_equivalent(self):
        relation = trel(("a", 1, 3), ("a", 3, 5))
        plan = Coalescing(LiteralRelation(relation))
        application = RULES["C2"].apply(plan)
        assert not multiset_equivalent(run(plan), run(application.replacement))


class TestC3:
    def test_pushes_selection_below_coalescing(self, r1):
        plan = Selection(equals("EmpName", "Anna"), Coalescing(LiteralRelation(r1)))
        application = RULES["C3"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, Coalescing)
        assert isinstance(rewritten.child, Selection)
        assert list_equivalent(run(plan), run(rewritten))

    def test_blocked_for_temporal_predicates(self, r1):
        plan = Selection(greater_than("T1", 3), Coalescing(LiteralRelation(r1)))
        assert RULES["C3"].apply(plan) is None


class TestC4:
    def test_drops_coalescing_below_nontemporal_projection(self, r1):
        plan = Projection(["EmpName"], Coalescing(LiteralRelation(r1)))
        application = RULES["C4"].apply(plan)
        assert application is not None
        assert set_equivalent(run(plan), run(application.replacement))

    def test_blocked_when_projection_keeps_time(self, r1):
        plan = Projection(["EmpName", "T1", "T2"], Coalescing(LiteralRelation(r1)))
        assert RULES["C4"].apply(plan) is None


class TestC5AndC6:
    def test_c5_merges_coalescings_over_union_all(self):
        left = trel(("a", 1, 3), ("a", 3, 5))
        right = trel(("b", 2, 4), ("b", 4, 6))
        plan = Coalescing(
            UnionAll(Coalescing(LiteralRelation(left)), Coalescing(LiteralRelation(right)))
        )
        application = RULES["C5"].apply(plan)
        assert application is not None
        # Registered as ≡SM (see the rule's docstring); on this particular
        # instance the results even coincide as lists.
        assert snapshot_multiset_equivalent(run(plan), run(application.replacement))
        assert list_equivalent(run(plan), run(application.replacement))

    def test_c6_merges_coalescings_over_temporal_union(self):
        left = trel(("a", 1, 3), ("a", 3, 5))
        right = trel(("a", 2, 4), ("b", 4, 6))
        plan = Coalescing(
            TemporalUnion(Coalescing(LiteralRelation(left)), Coalescing(LiteralRelation(right)))
        )
        application = RULES["C6"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_c5_requires_inner_coalescings(self):
        plan = Coalescing(
            UnionAll(LiteralRelation(trel(("a", 1, 3))), LiteralRelation(trel(("b", 1, 3))))
        )
        assert RULES["C5"].apply(plan) is None


class TestC7:
    def test_merges_coalescing_below_temporal_aggregation(self):
        relation = trel(("a", 1, 3), ("a", 3, 5), ("b", 2, 6))
        plan = Coalescing(
            TemporalAggregation(["Name"], [count(alias="n")], Coalescing(LiteralRelation(relation)))
        )
        application = RULES["C7"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))


class TestC8:
    def test_merges_coalescing_below_time_preserving_projection(self, r3):
        plan = Coalescing(
            Projection(["EmpName", "T1", "T2"], Coalescing(LiteralRelation(r3)))
        )
        application = RULES["C8"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_snapshot_duplicate_freedom(self, r1):
        plan = Coalescing(
            Projection(["EmpName", "T1", "T2"], Coalescing(LiteralRelation(r1)))
        )
        assert RULES["C8"].apply(plan) is None


class TestC9:
    def make_plan(self, left, right):
        product = TemporalCartesianProduct(left, right)
        keep = [
            attribute
            for attribute in product.output_schema().attributes
            if attribute not in ("1.T1", "1.T2", "2.T1", "2.T2")
        ]
        return Coalescing(Projection(keep, product))

    def test_pushes_coalescing_into_product_arguments(self):
        dept_schema = RelationSchema.temporal([("Dept", STRING)], name="D")
        left = LiteralRelation(trel(("a", 1, 3), ("a", 3, 6)))
        right = LiteralRelation(Relation.from_rows(dept_schema, [("Sales", 2, 5)]))
        plan = self.make_plan(left, right)
        application = RULES["C9"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, Projection)
        assert list_equivalent(run(plan), run(rewritten))

    def test_requires_snapshot_duplicate_free_arguments(self, r1):
        dept_schema = RelationSchema.temporal([("Dept", STRING)], name="D")
        right = LiteralRelation(Relation.from_rows(dept_schema, [("Sales", 2, 5)]))
        plan = self.make_plan(LiteralRelation(r1), right)
        assert RULES["C9"].apply(plan) is None


class TestC10:
    def test_pushes_coalescing_below_temporal_difference(self, r3, r1):
        plan = Coalescing(TemporalDifference(LiteralRelation(r3), LiteralRelation(r1)))
        application = RULES["C10"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, TemporalDifference)
        assert multiset_equivalent(run(plan), run(rewritten))

    def test_requires_snapshot_duplicate_free_left_argument(self, r1, r3):
        plan = Coalescing(TemporalDifference(LiteralRelation(r1), LiteralRelation(r3)))
        assert RULES["C10"].apply(plan) is None

    def test_paper_example_application(self, employee, project):
        """The Section 6 walk-through applies C10 to push coalescing below \\T."""
        left = dedup(Projection(["EmpName", "T1", "T2"], LiteralRelation(employee)))
        right = Projection(["EmpName", "T1", "T2"], LiteralRelation(project))
        plan = Coalescing(TemporalDifference(left, right))
        application = RULES["C10"].apply(plan)
        assert application is not None
        assert multiset_equivalent(run(plan), run(application.replacement))
