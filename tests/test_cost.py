"""Tests for cardinality estimation, the cost model and plan selection."""

import pytest

from repro.core.cost import CostModel, choose_best_plan, estimate_cardinality, estimate_cost
from repro.core.enumeration import enumerate_plans
from repro.core.expressions import equals
from repro.core.operations import (
    BaseRelation,
    CartesianProduct,
    Coalescing,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TransferToStratum,
)
from repro.core.order_spec import OrderSpec
from repro.core.query import QueryResultSpec
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation

STATS = {"EMPLOYEE": 1000, "PROJECT": 5000}


def scan(name="EMPLOYEE", schema=EMPLOYEE_SCHEMA):
    return BaseRelation(name, schema)


class TestCardinalityEstimation:
    def test_base_relations_use_statistics(self):
        assert estimate_cardinality(scan(), STATS) == 1000

    def test_missing_statistics_fall_back_to_default(self):
        model = CostModel()
        assert estimate_cardinality(scan(), {}) == model.default_base_cardinality

    def test_literal_relations_use_their_size(self, employee):
        assert estimate_cardinality(LiteralRelation(employee), STATS) == 5

    def test_selection_applies_selectivity(self):
        plan = Selection(equals("Dept", "Sales"), scan())
        model = CostModel(selectivity=0.5)
        assert estimate_cardinality(plan, STATS, model) == 500

    def test_product_multiplies(self):
        plan = CartesianProduct(scan(), scan("PROJECT", PROJECT_SCHEMA))
        assert estimate_cardinality(plan, STATS) == 1000 * 5000

    def test_projection_keeps_cardinality(self):
        plan = Projection(["EmpName", "T1", "T2"], scan())
        assert estimate_cardinality(plan, STATS) == 1000


class TestCostModel:
    def test_cost_is_positive_and_additive(self):
        plan = Sort(OrderSpec.ascending("EmpName"), Selection(equals("Dept", "Sales"), scan()))
        cost = estimate_cost(plan, STATS)
        assert cost.total > 0
        assert len(cost.breakdown) == 3
        assert cost.total >= max(entry[2] for entry in cost.breakdown)

    def test_dbms_execution_is_cheaper_for_conventional_work(self):
        in_stratum = Sort(OrderSpec.ascending("EmpName"), scan())
        in_dbms = TransferToStratum(Sort(OrderSpec.ascending("EmpName"), scan()))
        stratum_cost = estimate_cost(in_stratum, STATS).total
        # Remove the transfer overhead from the comparison by charging only
        # the sort: look at the per-operator breakdown.
        dbms_breakdown = {
            label: work for label, engine, work in estimate_cost(in_dbms, STATS).breakdown
        }
        stratum_breakdown = {
            label: work for label, engine, work in estimate_cost(in_stratum, STATS).breakdown
        }
        sort_label = Sort(OrderSpec.ascending("EmpName"), scan()).label()
        assert dbms_breakdown[sort_label] < stratum_breakdown[sort_label]

    def test_temporal_work_is_penalised_in_the_dbms(self):
        in_dbms = TransferToStratum(Coalescing(scan()))
        in_stratum = Coalescing(TransferToStratum(scan()))
        coalesce_label = Coalescing(scan()).label()
        dbms_work = {
            label: work for label, engine, work in estimate_cost(in_dbms, STATS).breakdown
        }[coalesce_label]
        stratum_work = {
            label: work for label, engine, work in estimate_cost(in_stratum, STATS).breakdown
        }[coalesce_label]
        assert dbms_work > stratum_work

    def test_engine_assignment_in_breakdown(self):
        plan = Coalescing(TransferToStratum(Selection(equals("Dept", "Sales"), scan())))
        breakdown = estimate_cost(plan, STATS).breakdown
        engines = {label: engine for label, engine, _ in breakdown}
        assert engines[Coalescing(scan()).label()] == "stratum"
        assert engines[Selection(equals("Dept", "Sales"), scan()).label()] == "dbms"


class TestPlanSelection:
    def test_requires_at_least_one_plan(self):
        with pytest.raises(ValueError):
            choose_best_plan([], STATS)

    def test_picks_the_cheaper_plan(self):
        expensive = CartesianProduct(scan(), scan("PROJECT", PROJECT_SCHEMA))
        cheap = Selection(equals("Dept", "Sales"), scan())
        chosen, cost = choose_best_plan([expensive, cheap], STATS)
        assert chosen == cheap
        assert cost.total == estimate_cost(cheap, STATS).total

    def test_selection_is_deterministic(self):
        plans = [
            Selection(equals("Dept", "Sales"), scan()),
            Selection(equals("Dept", "Ads"), scan()),
        ]
        first, _ = choose_best_plan(plans, STATS)
        second, _ = choose_best_plan(list(reversed(plans)), STATS)
        assert first == second

    def test_optimization_reduces_estimated_cost_for_the_paper_query(self):
        employee = Projection(["EmpName", "T1", "T2"], scan())
        project = Projection(["EmpName", "T1", "T2"], scan("PROJECT", PROJECT_SCHEMA))
        difference = TemporalDifference(TemporalDuplicateElimination(employee), project)
        initial = TransferToStratum(
            Sort(
                OrderSpec.ascending("EmpName"),
                Coalescing(TemporalDuplicateElimination(difference)),
            )
        )
        query = QueryResultSpec.list(OrderSpec.ascending("EmpName"), distinct=True)
        plans = enumerate_plans(initial, query)
        best, best_cost = choose_best_plan(plans.plans, STATS)
        initial_cost = estimate_cost(initial, STATS)
        assert best_cost.total < initial_cost.total
