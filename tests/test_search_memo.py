"""Unit tests for the memo table and the task-driven exploration."""

from repro.core.operations import (
    BaseRelation,
    Coalescing,
    Projection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TransferToStratum,
)
from repro.core.order_spec import OrderSpec
from repro.core.properties import root_properties
from repro.core.query import QueryResultSpec
from repro.core.rules import DEFAULT_RULES, rules_by_name
from repro.search import Memo, search_best_plan
from repro.search.memo import binding_feature
from repro.search.tasks import explore
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, paper_query

LIST_QUERY = QueryResultSpec.list(OrderSpec.ascending("EmpName"), distinct=True)


def employee_names():
    return Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))


def project_names():
    return Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))


class TestMemoInterning:
    def test_identical_subtrees_share_one_group(self):
        memo = Memo()
        context = root_properties(QueryResultSpec.multiset())
        first = memo.copy_in(employee_names(), context)
        second = memo.copy_in(employee_names(), context)
        assert first == second

    def test_interning_is_recursive(self):
        memo = Memo()
        context = root_properties(QueryResultSpec.multiset())
        memo.copy_in(TemporalDifference(employee_names(), project_names()), context)
        # Groups: difference, two projections, two base relations — the two
        # projection shapes differ (EMPLOYEE vs PROJECT), so nothing merges.
        assert len(memo.groups) == 5

    def test_contexts_separate_groups(self):
        memo = Memo()
        plan = TemporalDuplicateElimination(employee_names())
        context = root_properties(LIST_QUERY)
        memo.copy_in(plan, context)
        # The projection below the rdupT lives in a duplicates-irrelevant
        # context; interning the same subtree at root context adds groups.
        before = len(memo.groups)
        memo.copy_in(employee_names(), context)
        assert len(memo.groups) > before

    def test_witnesses_recorded(self):
        memo = Memo()
        context = root_properties(LIST_QUERY)
        root_id = memo.copy_in(TemporalDuplicateElimination(employee_names()), context)
        root_group = memo.group(root_id)
        assert root_group.no_snapshot_duplicates_witness is not None
        assert root_group.no_duplicates_witness is not None  # rdupT eliminates
        child_group = memo.group(root_group.expressions[0].children[0])
        assert child_group.no_duplicates_witness is None  # π over a base relation
        assert child_group.no_snapshot_duplicates_witness is None

    def test_rewrite_lands_in_the_same_group(self):
        memo = Memo()
        plan = TemporalDuplicateElimination(TemporalDuplicateElimination(employee_names()))
        context = root_properties(LIST_QUERY)
        root = memo.copy_in(plan, context)
        rules = [rules_by_name()["DT-idem"]]
        explore(memo, root, rules)
        group = memo.group(root)
        assert len(group.expressions) == 2
        shells = {type(expression.shell).__name__ for expression in group.expressions}
        assert shells == {"TemporalDuplicateElimination"}

    def test_binding_feature_distinguishes_guarantees(self):
        plain = employee_names()
        deduplicated = TemporalDuplicateElimination(plain)
        assert binding_feature(plain) != binding_feature(deduplicated)


class TestExplorationSharing:
    def test_shared_subplan_rewritten_once(self):
        plan, spec = paper_query()
        result = search_best_plan(plan, spec, statistics={"EMPLOYEE": 5, "PROJECT": 8})
        statistics = result.statistics
        # The memo considers far fewer fragments than the exhaustive space
        # holds plans (126 for this query), yet finds its minimum cost.
        assert statistics.plans_considered < 126
        assert statistics.groups > 5
        assert statistics.applications_succeeded > 0
        assert not statistics.truncated

    def test_statistics_mirror_enumeration_statistics(self):
        plan, spec = paper_query()
        result = search_best_plan(plan, spec, statistics={"EMPLOYEE": 5, "PROJECT": 8})
        statistics = result.statistics
        assert statistics.applications_attempted >= statistics.applications_succeeded
        assert statistics.rejected_by_properties > 0
        assert statistics.rule_usage
        assert statistics.sweeps >= 1

    def test_rule_order_does_not_change_the_best_cost(self):
        plan, spec = paper_query()
        stats = {"EMPLOYEE": 5, "PROJECT": 8}
        forward = search_best_plan(plan, spec, rules=list(DEFAULT_RULES), statistics=stats)
        backward = search_best_plan(
            plan, spec, rules=list(reversed(DEFAULT_RULES)), statistics=stats
        )
        assert forward.best_cost.total == backward.best_cost.total

    def test_truncation_budget_respected(self):
        from repro.search import SearchOptions

        plan, spec = paper_query()
        result = search_best_plan(
            plan,
            spec,
            statistics={"EMPLOYEE": 5, "PROJECT": 8},
            options=SearchOptions(max_expressions=12),
        )
        assert result.statistics.truncated
        # A truncated search still returns a valid plan, no worse than the seed.
        seed_result = search_best_plan(plan, spec, rules=[], statistics={"EMPLOYEE": 5, "PROJECT": 8})
        assert result.best_cost.total <= seed_result.best_cost.total


class TestSearchDeterminism:
    def test_same_inputs_same_plan(self):
        plan, spec = paper_query()
        stats = {"EMPLOYEE": 5, "PROJECT": 8}
        first = search_best_plan(plan, spec, statistics=stats)
        second = search_best_plan(plan, spec, statistics=stats)
        assert first.best_plan == second.best_plan
        assert first.best_cost.total == second.best_cost.total
