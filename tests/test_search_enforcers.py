"""Tests for the output-property enforcers of the memo search."""

from repro.core.operations import (
    BaseRelation,
    Coalescing,
    DuplicateElimination,
    Projection,
    Sort,
    TemporalDuplicateElimination,
    TransferToStratum,
)
from repro.core.order_spec import OrderSpec
from repro.core.query import QueryResultSpec
from repro.search import ensure_output_properties, missing_output_enforcers
from repro.workloads import EMPLOYEE_SCHEMA, paper_query

ORDER = OrderSpec.ascending("EmpName")


def bare_body():
    """A body plan carrying none of the output operators."""
    return TransferToStratum(
        Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
    )


class TestMissingEnforcers:
    def test_bare_plan_needs_everything(self):
        query = QueryResultSpec(distinct=True, order_by=ORDER, coalesced=True)
        missing = missing_output_enforcers(bare_body(), query)
        assert missing == ["duplicate-elimination", "coalescing", "sort"]

    def test_multiset_query_needs_nothing(self):
        assert missing_output_enforcers(bare_body(), QueryResultSpec.multiset()) == []

    def test_front_end_seed_plan_needs_nothing(self):
        plan, spec = paper_query()
        assert missing_output_enforcers(plan, spec) == []

    def test_snapshot_body_gets_conventional_duplicate_elimination(self):
        snapshot = TransferToStratum(
            Projection(["EmpName"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        )
        enforced = ensure_output_properties(snapshot, QueryResultSpec.set())
        assert isinstance(enforced, DuplicateElimination)


class TestEnsureOutputProperties:
    def test_wraps_in_canonical_order(self):
        query = QueryResultSpec(distinct=True, order_by=ORDER, coalesced=True)
        enforced = ensure_output_properties(bare_body(), query)
        # sort outermost, coalescing below it, duplicate elimination innermost.
        assert isinstance(enforced, Sort)
        assert isinstance(enforced.child, Coalescing)
        assert isinstance(enforced.child.child, TemporalDuplicateElimination)

    def test_idempotent_on_enforced_plans(self):
        query = QueryResultSpec(distinct=True, order_by=ORDER, coalesced=True)
        once = ensure_output_properties(bare_body(), query)
        assert ensure_output_properties(once, query) == once

    def test_search_accepts_bare_seed_plans(self):
        from repro.core.applicability import results_acceptable
        from repro.core.operations.base import EvaluationContext
        from repro.search import search_best_plan
        from repro.workloads import employee_relation, project_relation

        query = QueryResultSpec(distinct=True, order_by=ORDER, coalesced=True)
        result = search_best_plan(bare_body(), query, statistics={"EMPLOYEE": 5})
        context = EvaluationContext(
            {"EMPLOYEE": employee_relation(), "PROJECT": project_relation()}
        )
        reference = ensure_output_properties(bare_body(), query).evaluate(context)
        produced = result.best_plan.evaluate(context)
        assert results_acceptable(reference, produced, query)
