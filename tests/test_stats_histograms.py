"""Tests for the equi-depth and period histograms of ``repro.stats``."""

import pytest
from hypothesis import given

from repro.stats import EquiDepthHistogram, PeriodHistogram

from .strategies import period_columns, value_columns


class TestEquiDepthHistogram:
    def test_empty(self):
        histogram = EquiDepthHistogram.build([])
        assert histogram.total == 0
        assert histogram.selectivity_equals(1) == 0.0
        assert histogram.selectivity_range(0, 10) == 0.0

    def test_common_values_are_exact(self):
        values = ["a"] * 70 + ["b"] * 20 + ["c"] * 10
        histogram = EquiDepthHistogram.build(values)
        assert histogram.selectivity_equals("a") == pytest.approx(0.70)
        assert histogram.selectivity_equals("b") == pytest.approx(0.20)
        assert histogram.selectivity_equals("c") == pytest.approx(0.10)
        assert histogram.selectivity_equals("zzz") == 0.0

    def test_distinct_and_extremes(self):
        histogram = EquiDepthHistogram.build([5, 1, 3, 3, 9])
        assert histogram.total == 5
        assert histogram.distinct == 4
        assert histogram.minimum == 1
        assert histogram.maximum == 9

    def test_range_interpolation_on_uniform_integers(self):
        histogram = EquiDepthHistogram.build(list(range(100)), buckets=10)
        estimate = histogram.selectivity_range(low=20, high=39)
        assert estimate == pytest.approx(0.20, abs=0.05)

    def test_open_bounds(self):
        histogram = EquiDepthHistogram.build(list(range(10)))
        assert histogram.selectivity_range() == 1.0
        below = histogram.selectivity_range(high=4)
        assert 0.3 <= below <= 0.7

    def test_nulls_are_ignored(self):
        histogram = EquiDepthHistogram.build([1, None, 2, None])
        assert histogram.total == 2

    def test_depends_only_on_the_multiset(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        assert EquiDepthHistogram.build(values) == EquiDepthHistogram.build(
            list(reversed(values))
        )

    def test_merged_preserves_total(self):
        left = EquiDepthHistogram.build([1, 2, 3, 4])
        right = EquiDepthHistogram.build([10, 11])
        merged = left.merged_with(right)
        assert merged.total == 6
        assert merged.minimum == 1
        assert merged.maximum == 11

    @given(values=value_columns())
    def test_full_range_is_one_and_empty_range_is_zero(self, values):
        histogram = EquiDepthHistogram.build(values)
        full = histogram.selectivity_range(histogram.minimum, histogram.maximum)
        assert full == pytest.approx(1.0)
        assert histogram.selectivity_range() == 1.0
        assert histogram.selectivity_range(histogram.maximum + 1, histogram.minimum - 1) == 0.0
        assert (
            histogram.selectivity_range(5, 5, low_inclusive=True, high_inclusive=False)
            == 0.0
        )

    @given(values=value_columns())
    def test_selectivities_stay_in_unit_interval(self, values):
        histogram = EquiDepthHistogram.build(values)
        for probe in (-10, 0, 3, 99):
            assert 0.0 <= histogram.selectivity_equals(probe) <= 1.0
            assert 0.0 <= histogram.selectivity_range(low=probe) <= 1.0
            assert 0.0 <= histogram.selectivity_range(high=probe) <= 1.0


class TestPeriodHistogram:
    def test_empty(self):
        histogram = PeriodHistogram.build([])
        assert histogram.count == 0
        assert histogram.range_selectivity(0, 100) == 0.0

    def test_span_and_mean_duration(self):
        histogram = PeriodHistogram.build([(1, 5), (10, 12)])
        assert histogram.count == 2
        assert histogram.span_low == 1
        assert histogram.span_high == 12
        assert histogram.mean_duration == pytest.approx(3.0)

    def test_full_window_selectivity_is_one(self):
        histogram = PeriodHistogram.build([(1, 5), (3, 9), (8, 12)])
        assert histogram.range_selectivity(1, 12) == 1.0
        assert histogram.range_selectivity(0, 100) == 1.0

    def test_disjoint_window_selectivity_is_zero(self):
        histogram = PeriodHistogram.build([(1, 5), (2, 6)])
        assert histogram.range_selectivity(50, 60) == pytest.approx(0.0, abs=1e-9)
        assert histogram.range_selectivity(7, 3) == 0.0

    def test_partial_window(self):
        periods = [(i, i + 1) for i in range(1, 101)]
        histogram = PeriodHistogram.build(periods, buckets=20)
        estimate = histogram.range_selectivity(1, 51)
        assert estimate == pytest.approx(0.5, abs=0.1)

    def test_clustered_periods_overlap_more_than_spread_ones(self):
        clustered = PeriodHistogram.build([(10, 14 + i % 3) for i in range(40)])
        spread = PeriodHistogram.build([(5 * i, 5 * i + 2) for i in range(40)])
        assert clustered.overlap_fraction(clustered) > spread.overlap_fraction(spread)

    def test_overlap_fraction_bounds(self):
        left = PeriodHistogram.build([(1, 10), (2, 8)])
        right = PeriodHistogram.build([(100, 110)])
        assert left.overlap_fraction(right) == pytest.approx(0.0, abs=1e-9)
        assert 0.0 <= left.overlap_fraction(left) <= 1.0

    def test_depends_only_on_the_multiset(self):
        periods = [(1, 5), (3, 9), (8, 12), (1, 5)]
        assert PeriodHistogram.build(periods) == PeriodHistogram.build(
            list(reversed(periods))
        )

    def test_merged_preserves_count_and_span(self):
        left = PeriodHistogram.build([(1, 5), (2, 6), (4, 9)])
        right = PeriodHistogram.build([(50, 55)])
        merged = left.merged_with(right)
        assert merged.count == 4
        assert merged.span_low >= 1
        assert merged.span_high <= 60
        assert 0.0 <= merged.overlap_fraction(merged) <= 1.0

    @given(periods=period_columns())
    def test_selectivities_stay_in_unit_interval(self, periods):
        histogram = PeriodHistogram.build(periods)
        for low, high in ((0, 5), (3, 30), (-5, 100)):
            assert 0.0 <= histogram.range_selectivity(low, high) <= 1.0
        assert 0.0 <= histogram.overlap_fraction(histogram) <= 1.0
