"""Tests for the temporal SQL front end: lexer, parser and translator."""

import pytest

from repro.core.exceptions import ParseError
from repro.core.expressions import And, Comparison, ComparisonOperator, Literal
from repro.core.operations import (
    Aggregation,
    CartesianProduct,
    Coalescing,
    Difference,
    DuplicateElimination,
    Projection,
    Selection,
    Sort,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    TransferToStratum,
    Union,
    UnionAll,
)
from repro.core.order_spec import OrderSpec, SortDirection
from repro.core.query import ResultKind
from repro.tsql import parse_predicate, parse_statement, tokenize, translate_statement
from repro.tsql.ast import SetCombinator
from repro.tsql.lexer import TokenType
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA
from repro.core.schema import INTEGER, RelationSchema, STRING

SCHEMAS = {
    "EMPLOYEE": EMPLOYEE_SCHEMA,
    "PROJECT": PROJECT_SCHEMA,
    "ACCOUNT": RelationSchema.snapshot(
        [("Owner", STRING), ("Balance", INTEGER)], name="ACCOUNT"
    ),
}


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT EmpName FROM employee")
        assert tokens[0].is_keyword("SELECT")
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[2].is_keyword("FROM")
        assert tokens[-1].type is TokenType.END

    def test_numbers_strings_symbols(self):
        tokens = tokenize("Balance >= 100 AND Owner = 'O''Hara'")
        values = [token.value for token in tokens[:-1]]
        assert ">=" in values
        assert "100" in values

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("WHERE Name = 'oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")


class TestParser:
    def test_simple_select(self):
        statement = parse_statement("SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Sales'")
        assert statement.first.tables == ["EMPLOYEE"]
        assert len(statement.first.items) == 2
        assert statement.first.where is not None
        assert not statement.distinct and not statement.coalesce

    def test_select_star(self):
        statement = parse_statement("SELECT * FROM EMPLOYEE")
        assert statement.first.is_star

    def test_distinct_order_by_coalesce(self):
        statement = parse_statement(
            "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName DESC, T1 COALESCE"
        )
        assert statement.distinct
        assert statement.coalesce
        assert statement.order_by.keys[0].direction is SortDirection.DESC
        assert statement.order_by.attributes == ("EmpName", "T1")

    def test_coalesce_before_order_by(self):
        statement = parse_statement("SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName")
        assert statement.coalesce
        assert statement.order_by.attributes == ("EmpName",)

    def test_combinators(self):
        statement = parse_statement(
            "SELECT EmpName FROM EMPLOYEE EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
            "UNION ALL SELECT EmpName FROM PROJECT"
        )
        combinators = [combinator for combinator, _ in statement.combined]
        assert combinators == [SetCombinator.EXCEPT_TEMPORAL, SetCombinator.UNION_ALL]

    def test_group_by_and_aggregates(self):
        statement = parse_statement(
            "SELECT Dept, COUNT(EmpName) AS n FROM EMPLOYEE GROUP BY Dept"
        )
        assert statement.first.group_by == ["Dept"]
        assert statement.first.aggregates[0].output_name == "n"

    def test_where_grammar(self):
        predicate = parse_predicate("(Dept = 'Sales' OR Dept = 'Ads') AND NOT T1 > 5")
        assert isinstance(predicate, And)

    def test_between(self):
        predicate = parse_predicate("T1 BETWEEN 2 AND 6")
        assert isinstance(predicate, And)

    def test_arithmetic_in_select(self):
        statement = parse_statement("SELECT Balance + 10 AS Credit FROM ACCOUNT")
        assert statement.first.items[0].alias == "Credit"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT EmpName FROM EMPLOYEE garbage garbage")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT EmpName WHERE Dept = 'Sales'")


class TestTranslator:
    def test_paper_statement_yields_figure2a(self, paper_statement):
        plan, spec = translate_statement(paper_statement, SCHEMAS)
        # Shape: TS(sort(coalT(rdupT(\T(rdupT(π(EMPLOYEE)), π(PROJECT))))))
        assert isinstance(plan, TransferToStratum)
        sort = plan.child
        assert isinstance(sort, Sort)
        coal = sort.child
        assert isinstance(coal, Coalescing)
        outer_dedup = coal.child
        assert isinstance(outer_dedup, TemporalDuplicateElimination)
        difference = outer_dedup.child
        assert isinstance(difference, TemporalDifference)
        assert isinstance(difference.left, TemporalDuplicateElimination)
        assert isinstance(difference.left.child, Projection)
        assert isinstance(difference.right, Projection)
        assert spec.kind is ResultKind.LIST
        assert spec.distinct and spec.coalesced

    def test_projection_appends_time_attributes_for_temporal_statements(self):
        plan, _ = translate_statement("SELECT EmpName FROM EMPLOYEE", SCHEMAS)
        projection = plan.child
        assert isinstance(projection, Projection)
        assert projection.output_attribute_names() == ("EmpName", "T1", "T2")

    def test_conventional_statement_is_left_alone(self):
        plan, spec = translate_statement(
            "SELECT DISTINCT Owner FROM ACCOUNT WHERE Balance > 100", SCHEMAS
        )
        dedup = plan.child
        assert isinstance(dedup, DuplicateElimination)
        assert isinstance(dedup.child, Projection)
        assert isinstance(dedup.child.child, Selection)
        assert spec.kind is ResultKind.SET

    def test_multiple_tables_become_a_product(self):
        plan, _ = translate_statement(
            "SELECT * FROM EMPLOYEE, PROJECT WHERE Dept = 'Sales'", SCHEMAS
        )
        selection = plan.child
        assert isinstance(selection, Selection)
        assert isinstance(selection.child, TemporalCartesianProduct)

    def test_mixed_temporal_and_snapshot_tables_use_regular_product(self):
        plan, _ = translate_statement("SELECT * FROM EMPLOYEE, ACCOUNT", SCHEMAS)
        assert isinstance(plan.child, CartesianProduct)

    def test_union_variants(self):
        plan, _ = translate_statement(
            "SELECT EmpName FROM EMPLOYEE UNION ALL SELECT EmpName FROM PROJECT", SCHEMAS
        )
        assert isinstance(plan.child, UnionAll)
        plan, _ = translate_statement(
            "SELECT EmpName FROM EMPLOYEE UNION TEMPORAL SELECT EmpName FROM PROJECT", SCHEMAS
        )
        assert isinstance(plan.child, TemporalUnion)
        plan, _ = translate_statement(
            "SELECT Owner FROM ACCOUNT UNION SELECT Owner FROM ACCOUNT", SCHEMAS
        )
        assert isinstance(plan.child, Union)

    def test_except_defaults_to_multiset_difference(self):
        plan, _ = translate_statement(
            "SELECT Owner FROM ACCOUNT EXCEPT SELECT Owner FROM ACCOUNT", SCHEMAS
        )
        assert isinstance(plan.child, Difference)

    def test_except_temporal_inserts_left_deduplication_only_when_needed(self):
        plan, _ = translate_statement(
            "SELECT DISTINCT EmpName FROM EMPLOYEE EXCEPT TEMPORAL SELECT EmpName FROM PROJECT",
            SCHEMAS,
        )
        difference = plan.child.child  # below the outermost rdupT
        assert isinstance(difference, TemporalDifference)
        assert isinstance(difference.left, TemporalDuplicateElimination)

    def test_group_by_translates_to_temporal_aggregation(self):
        plan, _ = translate_statement(
            "SELECT Dept, COUNT(EmpName) AS n FROM EMPLOYEE GROUP BY Dept", SCHEMAS
        )
        assert isinstance(plan.child, TemporalAggregation)

    def test_group_by_on_snapshot_table_translates_to_aggregation(self):
        plan, _ = translate_statement(
            "SELECT Owner, SUM(Balance) AS total FROM ACCOUNT GROUP BY Owner", SCHEMAS
        )
        assert isinstance(plan.child, Aggregation)

    def test_unknown_table_rejected(self):
        with pytest.raises(ParseError):
            translate_statement("SELECT * FROM NOPE", SCHEMAS)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ParseError):
            translate_statement("SELECT Nope FROM EMPLOYEE", SCHEMAS)
        with pytest.raises(ParseError):
            translate_statement("SELECT EmpName FROM EMPLOYEE WHERE Nope = 1", SCHEMAS)

    def test_coalesce_requires_temporal_result(self):
        with pytest.raises(ParseError):
            translate_statement("SELECT Owner FROM ACCOUNT COALESCE", SCHEMAS)

    def test_temporal_combinator_requires_temporal_operands(self):
        with pytest.raises(ParseError):
            translate_statement(
                "SELECT Owner FROM ACCOUNT EXCEPT TEMPORAL SELECT Owner FROM ACCOUNT", SCHEMAS
            )

    def test_non_grouped_select_item_rejected(self):
        with pytest.raises(ParseError):
            translate_statement(
                "SELECT EmpName, COUNT(Dept) AS n FROM EMPLOYEE GROUP BY Dept", SCHEMAS
            )
