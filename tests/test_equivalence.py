"""Tests for the six equivalence types (Section 3) and Theorem 3.1."""

import pytest
from hypothesis import given

from repro.core.equivalence import (
    EquivalenceType,
    equivalent,
    implied_types,
    implies,
    list_equivalent,
    list_equivalent_on,
    multiset_equivalent,
    set_equivalent,
    snapshot_list_equivalent,
    snapshot_multiset_equivalent,
    snapshot_set_equivalent,
    strongest_equivalence,
)
from repro.core.exceptions import TemporalSchemaError
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.workloads import EMPLOYEE_NAME_SCHEMA, figure3_r1, figure3_r3

from .strategies import narrow_temporal_relations


def rel(*rows):
    return Relation.from_rows(EMPLOYEE_NAME_SCHEMA, rows)


class TestConventionalEquivalences:
    def test_list_equivalence_requires_same_order(self):
        a = rel(("a", 1, 2), ("b", 1, 2))
        b = rel(("b", 1, 2), ("a", 1, 2))
        assert not list_equivalent(a, b)
        assert multiset_equivalent(a, b)
        assert set_equivalent(a, b)

    def test_multiset_equivalence_counts_duplicates(self):
        a = rel(("a", 1, 2), ("a", 1, 2))
        b = rel(("a", 1, 2))
        assert not multiset_equivalent(a, b)
        assert set_equivalent(a, b)

    def test_list_equivalence_identical(self):
        a = rel(("a", 1, 2), ("b", 1, 2))
        b = rel(("a", 1, 2), ("b", 1, 2))
        assert list_equivalent(a, b)

    def test_different_schemas_are_never_equivalent(self, employee):
        a = rel(("a", 1, 2))
        assert not set_equivalent(a, employee)

    def test_list_equivalent_on_projects_to_order_attributes(self):
        order = OrderSpec.ascending("EmpName")
        a = rel(("a", 1, 2), ("b", 3, 4))
        b = rel(("a", 5, 6), ("b", 3, 4))
        # Same EmpName sequence, different periods: equivalent for ORDER BY EmpName.
        assert list_equivalent_on(a, b, order)
        c = rel(("b", 3, 4), ("a", 1, 2))
        assert not list_equivalent_on(a, c, order)

    def test_list_equivalent_on_requires_same_cardinality(self):
        order = OrderSpec.ascending("EmpName")
        assert not list_equivalent_on(rel(("a", 1, 2)), rel(("a", 1, 2), ("a", 3, 4)), order)


class TestSnapshotEquivalences:
    def test_figure3_r1_vs_r3(self):
        r1, r3 = figure3_r1(), figure3_r3()
        # The paper: the only equivalence between R1 and R3 is snapshot-set.
        assert not list_equivalent(r1, r3)
        assert not multiset_equivalent(r1, r3)
        assert not set_equivalent(r1, r3)
        assert not snapshot_list_equivalent(r1, r3)
        assert not snapshot_multiset_equivalent(r1, r3)
        assert snapshot_set_equivalent(r1, r3)

    def test_snapshot_equivalence_of_repackaged_periods(self):
        a = rel(("a", 1, 5))
        b = rel(("a", 1, 3), ("a", 3, 5))
        assert snapshot_multiset_equivalent(a, b)
        assert not multiset_equivalent(a, b)

    def test_snapshot_list_vs_multiset(self):
        a = rel(("a", 1, 3), ("b", 1, 3))
        b = rel(("b", 1, 3), ("a", 1, 3))
        assert snapshot_multiset_equivalent(a, b)
        assert not snapshot_list_equivalent(a, b)

    def test_snapshot_equivalences_need_temporal_relations(self, employee):
        snapshot = employee.snapshot(6)
        with pytest.raises(TemporalSchemaError):
            snapshot_set_equivalent(snapshot, snapshot)

    def test_strongest_equivalence_report(self):
        r1, r3 = figure3_r1(), figure3_r3()
        assert strongest_equivalence(r1, r3) == [EquivalenceType.SNAPSHOT_SET]
        assert EquivalenceType.LIST in strongest_equivalence(r1, figure3_r1())


class TestTheorem31:
    def test_direct_implications(self):
        assert implies(EquivalenceType.LIST, EquivalenceType.MULTISET)
        assert implies(EquivalenceType.MULTISET, EquivalenceType.SET)
        assert implies(EquivalenceType.LIST, EquivalenceType.SNAPSHOT_LIST)
        assert implies(EquivalenceType.MULTISET, EquivalenceType.SNAPSHOT_MULTISET)
        assert implies(EquivalenceType.SET, EquivalenceType.SNAPSHOT_SET)
        assert implies(EquivalenceType.SNAPSHOT_LIST, EquivalenceType.SNAPSHOT_MULTISET)
        assert implies(EquivalenceType.SNAPSHOT_MULTISET, EquivalenceType.SNAPSHOT_SET)

    def test_transitive_implications(self):
        assert implies(EquivalenceType.LIST, EquivalenceType.SNAPSHOT_SET)
        assert implies(EquivalenceType.MULTISET, EquivalenceType.SNAPSHOT_SET)

    def test_non_implications(self):
        assert not implies(EquivalenceType.SET, EquivalenceType.MULTISET)
        assert not implies(EquivalenceType.SNAPSHOT_LIST, EquivalenceType.LIST)
        assert not implies(EquivalenceType.SNAPSHOT_SET, EquivalenceType.SET)
        assert not implies(EquivalenceType.SET, EquivalenceType.SNAPSHOT_MULTISET)

    def test_every_type_implies_itself(self):
        for equivalence in EquivalenceType:
            assert implies(equivalence, equivalence)

    def test_list_implies_everything(self):
        assert implied_types(EquivalenceType.LIST) == frozenset(EquivalenceType)

    @given(narrow_temporal_relations(), narrow_temporal_relations())
    def test_implication_lattice_holds_on_random_relations(self, left, right):
        """If a stronger equivalence holds between two relations, every implied one does."""
        for stronger in EquivalenceType:
            if not equivalent(stronger, left, right):
                continue
            for weaker in implied_types(stronger):
                assert equivalent(weaker, left, right)
