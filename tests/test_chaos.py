"""Chaos suite: ≥100 seeded fault scenarios against a live concurrent server.

One server survives the whole run.  Each scenario draws a fault (point,
kind, budget) from a seeded generator, arms it, drives a concurrent mix of
queries and appends from multiple client threads, disarms, and probes.
Four invariants hold across every scenario, whatever was injected:

* **never hangs** — every future resolves within a hard timeout;
* **never loses an update** — appends either land atomically (reporting a
  distinct epoch) or fail without a trace; the final table is exactly the
  base rows plus the successful batches, verified by serial epoch replay
  of sampled reads;
* **keeps serving** — a probe query succeeds after every scenario;
* **typed errors** — every non-ok response carries a stable error code,
  and every fault that actually fired surfaces as a failed response or a
  counted degradation.

``CHAOS_SEED`` selects the schedule (CI runs several); ``CHAOS_SCENARIOS``
scales the run length.  Given the same seed, the fault schedule replays
exactly.
"""

from __future__ import annotations

import os
import random
import threading

from repro.core.equivalence import snapshot_set_equivalent
from repro.faults import FAULTS
from repro.server import Server
from repro.session import Session
from repro.stratum import TemporalDatabase
from repro.workloads import (
    concurrent_mix_operations,
    employee_relation,
    project_relation,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
SCENARIOS = int(os.environ.get("CHAOS_SCENARIOS", "100"))

CLIENTS = 2
OPS_PER_CLIENT = 6
APPEND_EVERY = 3
RESULT_TIMEOUT = 30.0  # "never hangs" is enforced by this, scenario by scenario
PROBE = "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?"

#: The fault menu one scenario draws from: (point, kind).  ``latency``
#: entries stall, the rest raise; ``catalog.append`` additionally exercises
#: the corrupt-and-detect path.
MENU = [
    ("tsql.parse", "error"),
    ("search.memo", "error"),
    ("session.bind", "error"),
    ("stratum.pull", "error"),
    ("stratum.pull", "latency"),
    ("dbms.scan", "error"),
    ("dbms.scan", "latency"),
    ("catalog.append", "error"),
    ("catalog.append", "corrupt"),
    ("server.worker", "error"),
]

#: Points whose error faults can be absorbed by graceful degradation
#: (memo falls back to the default plan; a failed pipelined region re-runs
#: through the reference evaluator, which may itself push scans down).
DEGRADABLE = {"search.memo", "stratum.pull", "dbms.scan"}


def make_database() -> TemporalDatabase:
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return database


def _degraded_total(server: Server) -> float:
    counter = server.metrics.counter(
        "repro_degraded_total",
        "Requests that fell back to a degraded path, by stage.",
        labelnames=("stage",),
    )
    return sum(
        counter.labels(stage=stage).value()
        for stage in ("memo_search", "stratum_physical")
    )


def _drive_scenario(server: Server, scenario: int, timeout):
    """CLIENTS threads × OPS_PER_CLIENT mixed ops; returns resolved records."""
    records: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    def client(thread: int) -> None:
        # A unique client index per (scenario, thread) keeps every append
        # batch's row names globally unique — the lost-update bookkeeping
        # below depends on it.
        index = scenario * CLIENTS + thread + 1
        ops = concurrent_mix_operations(
            OPS_PER_CLIENT, client=index, append_every=APPEND_EVERY
        )
        futures = []
        barrier.wait()
        for kind, target, payload in ops:
            if kind == "append":
                futures.append((kind, target, payload, server.submit_append(target, payload, timeout=timeout)))
            else:
                futures.append((kind, target, payload, server.submit(target, payload, timeout=timeout)))
        resolved = [
            (kind, target, payload, future.result(timeout=RESULT_TIMEOUT))
            for kind, target, payload, future in futures
        ]
        with lock:
            records.extend(resolved)

    threads = [threading.Thread(target=client, args=(t,)) for t in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=RESULT_TIMEOUT * 2)
        assert not thread.is_alive(), f"scenario {scenario}: client thread hung"
    return records


def _same_rows(left, right) -> bool:
    if sorted(tuple(t.values()) for t in left.tuples) == sorted(
        tuple(t.values()) for t in right.tuples
    ):
        return True
    try:
        return snapshot_set_equivalent(left, right)
    except Exception:
        return False


def test_chaos_schedule_survives_every_injected_fault():
    rng = random.Random(CHAOS_SEED)
    database = make_database()
    base_epoch = database.statistics_epoch()
    base_rows = database.table("EMPLOYEE").cardinality

    ok_batches: dict = {}  # epoch -> rows, successful appends only
    failed_batch_names: set = set()
    sampled_reads: list = []  # (statement, params, response) for epoch replay
    scenarios_run = 0

    server = Server(database, max_concurrency=4, queue_limit=None)
    with server:
        for scenario in range(SCENARIOS):
            point, kind = rng.choice(MENU)
            times = rng.choice([1, 2])
            timeout = None
            arm_kwargs = {"kind": kind, "times": times}
            if kind == "latency":
                if rng.random() < 0.5:
                    arm_kwargs["latency"] = 0.05  # a stall requests ride out
                else:
                    arm_kwargs["latency"] = 0.5  # a stall deadlines cut short
                    timeout = 0.1
            fired_before = FAULTS.fired(point)
            degraded_before = _degraded_total(server)

            with FAULTS.armed(point, **arm_kwargs):
                records = _drive_scenario(server, scenario, timeout)
                fired = FAULTS.fired(point) - fired_before
            scenarios_run += 1

            not_ok = 0
            for op_kind, target, payload, response in records:
                if response.ok:
                    if op_kind == "append":
                        assert response.epoch not in ok_batches, (
                            f"scenario {scenario}: two appends reported epoch "
                            f"{response.epoch}"
                        )
                        ok_batches[response.epoch] = payload
                    elif scenario % 9 == 0 and len(sampled_reads) < 24:
                        sampled_reads.append((target, payload, response))
                    continue
                not_ok += 1
                # -- typed errors: stable code + status, never a bare crash --
                assert response.status in ("error", "timed_out", "cancelled"), response
                assert isinstance(response.code, str) and response.code, (
                    f"scenario {scenario} ({point}/{kind}): untyped failure "
                    f"{response.status} {response.error!r}"
                )
                if op_kind == "append":
                    for row in payload:
                        failed_batch_names.add(row[0])

            # -- accounting: every firing surfaced somewhere ----------------
            degraded_delta = _degraded_total(server) - degraded_before
            if kind in ("error", "corrupt") and fired:
                if point in DEGRADABLE:
                    # One failed request can absorb up to ``times`` firings:
                    # firing #1 degrades a pipelined region, firing #2 kills
                    # the reference re-execution — the request fails and its
                    # degradation is never recorded.  Every firing must still
                    # be attributable to a failure or a counted degradation.
                    assert not_ok + degraded_delta >= 1, (
                        f"scenario {scenario}: {fired} × {point}/{kind} fired "
                        "with no failure and no degradation"
                    )
                    assert times * not_ok + degraded_delta >= fired, (
                        f"scenario {scenario}: {fired} × {point}/{kind} fired, "
                        f"only {not_ok} failures + {degraded_delta} degradations"
                    )
                else:
                    assert not_ok >= fired, (
                        f"scenario {scenario}: {fired} × {point}/{kind} fired "
                        f"but only {not_ok} requests failed"
                    )

            # -- keeps serving: a clean probe succeeds after every scenario --
            probe = server.query(PROBE, params=("Sales",))
            assert probe.ok, (
                f"scenario {scenario} ({point}/{kind}): probe failed with "
                f"{probe.code}: {probe.error}"
            )

        final_stats = server.stats()

    assert scenarios_run == SCENARIOS
    # -- the books balance: every admitted request was answered -------------
    assert (
        final_stats.completed
        + final_stats.failed
        + final_stats.timed_out
        + final_stats.cancelled
        == final_stats.submitted
    ), final_stats
    assert final_stats.rejected == 0 and final_stats.worker_crashes == 0

    # -- no lost updates ----------------------------------------------------
    appended = sum(len(rows) for rows in ok_batches.values())
    assert database.table("EMPLOYEE").cardinality == base_rows + appended
    assert sorted(ok_batches) == list(
        range(base_epoch + 1, base_epoch + len(ok_batches) + 1)
    ), "successful appends did not form a gap-free epoch sequence"
    final_names = {t["EmpName"] for t in database.table("EMPLOYEE").tuples}
    for rows in ok_batches.values():
        for row in rows:
            assert row[0] in final_names, f"update lost: {row[0]}"
    ok_names = {row[0] for rows in ok_batches.values() for row in rows}
    for name in failed_batch_names - ok_names:
        assert name not in final_names, f"failed append leaked rows: {name}"

    # -- epoch replay: sampled reads equal the serial state they pinned -----
    assert sampled_reads, "sampling never caught a successful read"
    replayed: dict = {}
    for statement, params, response in sampled_reads:
        epoch = response.epoch
        if epoch not in replayed:
            serial_db = make_database()
            for append_epoch in range(base_epoch + 1, epoch + 1):
                serial_db.insert("EMPLOYEE", ok_batches[append_epoch])
            replayed[epoch] = Session(serial_db)
        serial = replayed[epoch].execute(statement, params=params)
        assert _same_rows(response.relation, serial.relation), (
            f"read at epoch {epoch} diverged from serial replay for "
            f"{statement!r} {params!r}"
        )
