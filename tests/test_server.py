"""The serving layer: lifecycle, admission control, shared cache, TCP.

Deterministic unit tests of :mod:`repro.server` — the timing-sensitive
admission paths (rejection, queue-wait timeout) are driven by blocking the
worker pool on an event rather than by racing sleeps, so they cannot flake.
The snapshot-differential and stress coverage lives in
``tests/test_server_snapshots.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import (
    Server,
    ServerClosedError,
    ServerOverloadedError,
    TCPClient,
    TCPFrontend,
)
from repro.obs import Tracer
from repro.server.metrics import LatencyRecorder, percentile
from repro.session import Session
from repro.session.cache import PlanCache
from repro.stratum import TemporalDatabase
from repro.workloads import PAPER_SQL, POINT_SQL, employee_relation, project_relation


def make_server(**kwargs) -> Server:
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return Server(database, **kwargs)


BLOCK_MARKER = "SELECT-BLOCK-MARKER"


@pytest.fixture
def blockable(monkeypatch):
    """Patch worker sessions so the BLOCK_MARKER statement parks on an event.

    Lets a test occupy every worker deterministically, then fill the queue,
    then release — no sleeps, no races.
    """
    release = threading.Event()
    real_execute = Session.execute

    def execute(self, statement, params=(), snapshot=None, **kwargs):
        if statement == BLOCK_MARKER:
            assert release.wait(timeout=30.0), "test never released the workers"
            raise ValueError("block marker completed")
        return real_execute(self, statement, params, snapshot=snapshot, **kwargs)

    monkeypatch.setattr(Session, "execute", execute)
    yield release
    release.set()


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestLifecycle:
    def test_context_manager_runs_queries(self):
        with make_server(max_concurrency=2) as server:
            response = server.query(POINT_SQL, params=("Sales",))
            assert response.ok and response.kind == "query"
            assert sorted({t["EmpName"] for t in response.relation.tuples}) == [
                "Anna",
                "John",
            ]

    def test_submit_before_start_and_after_close_raise(self):
        server = make_server()
        with pytest.raises(ServerClosedError):
            server.submit(PAPER_SQL)
        server.start()
        assert server.query(PAPER_SQL).ok
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(PAPER_SQL)
        server.close()  # idempotent

    def test_close_drains_queued_requests(self, blockable):
        server = make_server(max_concurrency=1)
        server.start()
        blocker = server.submit(BLOCK_MARKER)
        _wait_until(lambda: server.stats().active_workers == 1)
        queued = server.submit(POINT_SQL, params=("Sales",))
        blockable.set()
        server.close()
        assert blocker.result(timeout=5).status == "error"
        assert queued.result(timeout=5).ok

    def test_constructor_validates_knobs(self):
        with pytest.raises(ValueError):
            Server(max_concurrency=0)
        with pytest.raises(ValueError):
            Server(queue_limit=0)


class TestExecution:
    def test_bad_statement_returns_error_response_and_worker_survives(self):
        with make_server(max_concurrency=1) as server:
            bad = server.query("SELECT FROM WHERE")
            assert bad.status == "error" and bad.error
            good = server.query(PAPER_SQL)
            assert good.ok

    def test_append_reports_rows_and_epoch(self):
        with make_server() as server:
            before = server.database.statistics_epoch()
            response = server.append("EMPLOYEE", [("Zoe", "Sales", 1, 5)])
            assert response.ok and response.kind == "append"
            assert response.rows_inserted == 1
            assert response.epoch == before + 1

    def test_unknown_table_append_is_an_error_response(self):
        with make_server() as server:
            response = server.append("NOPE", [("x",)])
            assert response.status == "error"

    def test_server_matches_serial_session(self):
        database = TemporalDatabase()
        database.register("EMPLOYEE", employee_relation())
        database.register("PROJECT", project_relation())
        serial = Session(database).execute(PAPER_SQL).relation
        with make_server(max_concurrency=4) as server:
            futures = [server.submit(PAPER_SQL) for _ in range(8)]
            for future in futures:
                response = future.result(timeout=30)
                assert response.ok
                assert list(response.relation.tuples) == list(serial.tuples)


class TestSharedPlanCache:
    def test_second_worker_hits_the_shared_cache(self):
        # max_concurrency=2 gives two distinct sessions; the statement is
        # optimized once and every later execution hits, whichever worker.
        with make_server(max_concurrency=2) as server:
            first = server.query(PAPER_SQL)
            assert first.ok and not first.cache_hit
            hits = [server.query(PAPER_SQL) for _ in range(8)]
            assert all(r.ok and r.cache_hit for r in hits)
            info = server.plan_cache.info()
            assert info.misses == 1
            assert info.hits == 8

    def test_external_cache_is_shared_across_servers(self):
        cache = PlanCache(64)
        database = TemporalDatabase()
        database.register("EMPLOYEE", employee_relation())
        database.register("PROJECT", project_relation())
        with Server(database, plan_cache=cache) as first:
            assert not first.query(PAPER_SQL).cache_hit
        with Server(database, plan_cache=cache) as second:
            assert second.query(PAPER_SQL).cache_hit

    def test_append_invalidates_across_workers(self):
        with make_server(max_concurrency=2) as server:
            assert not server.query(POINT_SQL, params=("Sales",)).cache_hit
            assert server.query(POINT_SQL, params=("Sales",)).cache_hit
            server.append("EMPLOYEE", [("Fresh", "Sales", 2, 4)])
            after = server.query(POINT_SQL, params=("Sales",))
            assert not after.cache_hit, "stale plan served after epoch bump"
            assert any(t["EmpName"] == "Fresh" for t in after.relation.tuples)
            assert server.query(POINT_SQL, params=("Sales",)).cache_hit


class TestAdmissionControl:
    def test_full_queue_rejects_with_backpressure(self, blockable):
        server = make_server(max_concurrency=1, queue_limit=2)
        server.start()
        try:
            blocker = server.submit(BLOCK_MARKER)
            _wait_until(lambda: server.stats().active_workers == 1)
            queued = [server.submit(POINT_SQL, params=("Sales",)) for _ in range(2)]
            with pytest.raises(ServerOverloadedError):
                server.submit(POINT_SQL, params=("Sales",))
            stats = server.stats()
            assert stats.rejected == 1
            assert stats.queue_depth == 2
            blockable.set()
            assert blocker.result(timeout=5).status == "error"
            for future in queued:
                assert future.result(timeout=5).ok
        finally:
            blockable.set()
            server.close()
        assert server.stats().rejected == 1

    def test_deadline_expired_in_queue_times_out_without_running(self, blockable):
        server = make_server(max_concurrency=1)
        server.start()
        try:
            blocker = server.submit(BLOCK_MARKER)
            _wait_until(lambda: server.stats().active_workers == 1)
            doomed = server.submit(POINT_SQL, params=("Sales",), timeout=0.01)
            time.sleep(0.05)  # let the deadline pass while it queues
            blockable.set()
            response = doomed.result(timeout=5)
            assert response.status == "timed_out"
            assert response.relation is None
            assert blocker.result(timeout=5).status == "error"
            stats = server.stats()
            assert stats.timed_out == 1
        finally:
            blockable.set()
            server.close()

    def test_default_request_timeout_applies(self, blockable):
        server = make_server(max_concurrency=1, request_timeout=0.01)
        server.start()
        try:
            blocker = server.submit(BLOCK_MARKER, timeout=30.0)
            _wait_until(lambda: server.stats().active_workers == 1)
            doomed = server.submit(POINT_SQL, params=("Sales",))
            time.sleep(0.05)
            blockable.set()
            assert doomed.result(timeout=5).status == "timed_out"
            blocker.result(timeout=5)
        finally:
            blockable.set()
            server.close()

    def test_peak_active_workers_is_bounded_by_max_concurrency(self):
        with make_server(max_concurrency=2) as server:
            futures = [server.submit(PAPER_SQL) for _ in range(12)]
            for future in futures:
                assert future.result(timeout=30).ok
            stats = server.stats()
            assert 1 <= stats.peak_active_workers <= 2

    def test_stats_accounting_adds_up(self, blockable):
        server = make_server(max_concurrency=1, queue_limit=1)
        server.start()
        try:
            blocker = server.submit(BLOCK_MARKER)
            _wait_until(lambda: server.stats().active_workers == 1)
            server.submit(POINT_SQL, params=("Sales",))
            with pytest.raises(ServerOverloadedError):
                server.submit(POINT_SQL, params=("Sales",))
            blockable.set()
        finally:
            blockable.set()
            server.close()
        stats = server.stats()
        assert stats.submitted == 3
        assert stats.completed + stats.failed + stats.rejected == 3
        assert stats.rejected == 1
        assert stats.queue_depth == 0 and stats.active_workers == 0


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_recorder_summary(self):
        recorder = LatencyRecorder(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):  # first value falls off the ring
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(3.5)
        assert summary.max == 5.0

    def test_latency_recorded_per_request(self):
        with make_server() as server:
            server.query(PAPER_SQL)
            summary = server.stats().latency
            assert summary.count == 1
            assert summary.p50 > 0.0


class TestTCPFrontend:
    def test_round_trip_query_append_stats(self):
        with make_server(max_concurrency=2) as server:
            with TCPFrontend(server) as frontend:
                host, port = frontend.address
                with TCPClient(host, port) as client:
                    assert client.ping() == {"status": "ok", "pong": True}

                    reply = client.query(POINT_SQL, params=["Sales"])
                    assert reply["status"] == "ok"
                    assert reply["columns"] == ["EmpName", "T1", "T2"]
                    names = {row[0] for row in reply["rows"]}
                    assert names == {"Anna", "John"}

                    appended = client.append("EMPLOYEE", [["Rem", "Sales", 3, 6]])
                    assert appended["status"] == "ok"
                    assert appended["rows_inserted"] == 1

                    again = client.query(POINT_SQL, params=["Sales"])
                    assert "Rem" in {row[0] for row in again["rows"]}

                    stats = client.stats()["stats"]
                    assert stats["completed"] >= 3
                    assert stats["plan_cache"]["misses"] >= 1

    def test_protocol_errors_keep_the_connection_alive(self):
        with make_server() as server:
            with TCPFrontend(server) as frontend:
                host, port = frontend.address
                with TCPClient(host, port) as client:
                    assert client.request({"op": "nope"})["status"] == "error"
                    bad_sql = client.query("SELECT FROM WHERE")
                    assert bad_sql["status"] == "error"
                    # The connection still serves after both errors.
                    assert client.ping()["status"] == "ok"

    def test_multiple_clients_share_one_server(self):
        with make_server(max_concurrency=2) as server:
            with TCPFrontend(server) as frontend:
                host, port = frontend.address
                clients = [TCPClient(host, port) for _ in range(4)]
                try:
                    for client in clients:
                        assert client.query(PAPER_SQL)["status"] == "ok"
                finally:
                    for client in clients:
                        client.close()
            info = server.plan_cache.info()
            assert info.misses == 1 and info.hits == 3


class TestObservabilityIntegration:
    def test_response_carries_timings_and_exposition_matches_stats(self):
        with make_server(max_concurrency=2, tracer=Tracer()) as server:
            with TCPFrontend(server) as frontend:
                host, port = frontend.address
                with TCPClient(host, port) as client:
                    first = client.query(PAPER_SQL)
                    second = client.query(PAPER_SQL)
                    for reply in (first, second):
                        assert reply["status"] == "ok"
                        assert set(reply["timings"]) == {"parse", "optimize", "execute"}
                        assert all(v >= 0.0 for v in reply["timings"].values())
                        assert reply["trace_id"]
                    assert first["trace_id"] != second["trace_id"]

                    stats = server.stats()
                    lines = client.metrics()["exposition"].splitlines()
                    assert (
                        f"repro_server_requests_completed_total {stats.completed}"
                        in lines
                    )
                    assert (
                        f"repro_plan_cache_hits_total {stats.plan_cache.hits}" in lines
                    )
                    assert (
                        f"repro_plan_cache_misses_total {stats.plan_cache.misses}"
                        in lines
                    )
                    assert "repro_server_queue_depth 0" in lines
                    assert f"repro_server_epoch {stats.epoch}" in lines
                    # Per-kind request latency histograms come from the
                    # worker sessions sharing the server's registry.
                    assert any(
                        line.startswith('repro_request_seconds_count{kind="compound"}')
                        for line in lines
                    )

                    traces = client.trace(limit=5)["traces"]
                    assert {t["trace_id"] for t in traces} == {
                        first["trace_id"],
                        second["trace_id"],
                    }
                    newest = traces[-1]
                    child_names = [c["name"] for c in newest["root"]["children"]]
                    assert child_names[:4] == ["parse", "optimize", "bind", "execute"]

    def test_untraced_server_still_serves_metrics(self):
        with make_server() as server:
            with TCPFrontend(server) as frontend:
                host, port = frontend.address
                with TCPClient(host, port) as client:
                    reply = client.query(PAPER_SQL)
                    assert reply["status"] == "ok"
                    assert "trace_id" not in reply
                    assert set(reply["timings"]) == {"parse", "optimize", "execute"}
                    assert client.trace()["traces"] == []
                    assert "repro_server_requests_completed_total 1" in (
                        client.metrics()["exposition"].splitlines()
                    )
