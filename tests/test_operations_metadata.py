"""Tests for the Table 1 metadata: result order, cardinality bounds, behaviours.

These tests check that the *declared* metadata of every operation matches its
*observed* behaviour: the derived order specification really describes the
result's tuple sequence, the cardinality bounds really bound the result, and
the duplicate/coalescing behaviour classes hold on concrete inputs.
"""

from hypothesis import given

from repro.core.analysis import derive_cardinality_bounds, derive_order
from repro.core.expressions import count, equals
from repro.core.operations import (
    ALL_OPERATION_TYPES,
    Aggregation,
    CartesianProduct,
    Coalescing,
    Difference,
    DuplicateElimination,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    TransferToDBMS,
    TransferToStratum,
    Union,
    UnionAll,
)
from repro.core.operations.base import (
    CoalescingBehavior,
    DuplicateBehavior,
    EvaluationContext,
    Operation,
)
from repro.core.order_spec import OrderSpec
from repro.workloads import EMPLOYEE_NAME_SCHEMA

from .strategies import narrow_temporal_relations

CONTEXT = EvaluationContext()


def run(op):
    return op.evaluate(CONTEXT)


def sorted_literal(relation, *attributes):
    return LiteralRelation(relation.sorted_by(OrderSpec.ascending(*attributes)))


def build_unary_operations(child):
    """One instance of every unary operation over ``child`` (narrow temporal schema)."""
    return [
        Selection(equals("Name", "John"), child),
        Projection(["Name", "T1", "T2"], child),
        DuplicateElimination(child),
        TemporalDuplicateElimination(child),
        Coalescing(child),
        Sort(OrderSpec.ascending("Name"), child),
        Aggregation(["Name"], [count()], child),
        TemporalAggregation(["Name"], [count()], child),
        TransferToStratum(child),
        TransferToDBMS(child),
    ]


def build_binary_operations(left, right):
    """One instance of every binary operation over two narrow temporal children."""
    return [
        UnionAll(left, right),
        Union(left, right),
        TemporalUnion(left, right),
        Difference(left, right),
        TemporalDifference(left, right),
        CartesianProduct(left, right),
        TemporalCartesianProduct(left, right),
    ]


class TestTable1Catalogue:
    def test_every_operation_declares_its_paper_metadata(self):
        for operation_type in ALL_OPERATION_TYPES:
            assert operation_type.paper_order, operation_type
            assert operation_type.paper_cardinality, operation_type
            assert isinstance(operation_type.duplicate_behavior, DuplicateBehavior)
            assert isinstance(operation_type.coalescing_behavior, CoalescingBehavior)

    def test_order_sensitive_operations_match_section6(self):
        order_sensitive = {
            op.__name__
            for op in ALL_OPERATION_TYPES
            if op.order_sensitive
        }
        assert order_sensitive == {
            "TemporalDuplicateElimination",
            "Coalescing",
            "TemporalDifference",
            "TemporalUnion",
            "TemporalAggregation",
        }

    def test_eliminating_operations(self):
        eliminating = {
            op.__name__
            for op in ALL_OPERATION_TYPES
            if op.duplicate_behavior is DuplicateBehavior.ELIMINATES
        }
        assert eliminating == {
            "DuplicateElimination",
            "TemporalDuplicateElimination",
            "Aggregation",
            "TemporalAggregation",
        }

    def test_only_coalescing_enforces_coalescing(self):
        enforcing = [
            op
            for op in ALL_OPERATION_TYPES
            if op.coalescing_behavior is CoalescingBehavior.ENFORCES
        ]
        assert enforcing == [Coalescing]


class TestDerivedOrderDescribesResult:
    @given(narrow_temporal_relations(max_size=6))
    def test_unary_operations(self, relation):
        child = sorted_literal(relation, "Name", "T1")
        for operation in build_unary_operations(child):
            derived = derive_order(operation)
            result = run(operation)
            if derived.is_unordered():
                continue
            resorted = result.sorted_by(derived)
            assert list(resorted.tuples) == list(result.tuples), operation.label()

    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_binary_operations(self, left_relation, right_relation):
        left = sorted_literal(left_relation, "Name", "T1")
        right = sorted_literal(right_relation, "Name", "T1")
        for operation in build_binary_operations(left, right):
            derived = derive_order(operation)
            result = run(operation)
            if derived.is_unordered():
                continue
            resorted = result.sorted_by(derived)
            assert list(resorted.tuples) == list(result.tuples), operation.label()


class TestCardinalityBounds:
    @given(narrow_temporal_relations(max_size=6))
    def test_unary_operations(self, relation):
        child = LiteralRelation(relation)
        for operation in build_unary_operations(child):
            low, high = derive_cardinality_bounds(operation)
            cardinality = run(operation).cardinality
            assert low <= cardinality <= high, operation.label()

    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_binary_operations(self, left_relation, right_relation):
        left = LiteralRelation(left_relation)
        right = LiteralRelation(right_relation)
        for operation in build_binary_operations(left, right):
            low, high = derive_cardinality_bounds(operation)
            cardinality = run(operation).cardinality
            assert low <= cardinality <= high, operation.label()


class TestDuplicateBehaviour:
    @given(narrow_temporal_relations(max_size=6))
    def test_retaining_unary_operations_preserve_duplicate_freedom(self, relation):
        deduplicated = run(DuplicateElimination(LiteralRelation(relation)))
        # Re-attach the temporal schema by rebuilding rows (rdup demoted T1/T2).
        if relation.has_duplicates():
            return
        # Like the binary-operation test below, assume snapshot-duplicate-free
        # arguments: the operational coalescing can merge value-equivalent
        # overlapping periods into tuples identical to existing ones.
        if relation.has_snapshot_duplicates():
            return
        child = LiteralRelation(relation)
        for operation in build_unary_operations(child):
            if operation.duplicate_behavior is not DuplicateBehavior.RETAINS:
                continue
            assert not run(operation).has_duplicates(), operation.label()

    @given(narrow_temporal_relations(max_size=5), narrow_temporal_relations(max_size=5))
    def test_retaining_binary_operations_preserve_duplicate_freedom(
        self, left_relation, right_relation
    ):
        # The temporal operations retain duplicate freedom under the paper's
        # usage assumption of snapshot-duplicate-free arguments (overlapping
        # value-equivalent periods can otherwise be cut into equal fragments).
        if left_relation.has_duplicates() or right_relation.has_duplicates():
            return
        if left_relation.has_snapshot_duplicates() or right_relation.has_snapshot_duplicates():
            return
        left = LiteralRelation(left_relation)
        right = LiteralRelation(right_relation)
        for operation in build_binary_operations(left, right):
            if operation.duplicate_behavior is not DuplicateBehavior.RETAINS:
                continue
            assert not run(operation).has_duplicates(), operation.label()

    @given(narrow_temporal_relations(max_size=6))
    def test_eliminating_operations_remove_duplicates(self, relation):
        child = LiteralRelation(relation)
        for operation in build_unary_operations(child):
            if operation.duplicate_behavior is not DuplicateBehavior.ELIMINATES:
                continue
            assert not run(operation).has_duplicates(), operation.label()


class TestCoalescingBehaviour:
    @given(narrow_temporal_relations(max_size=6))
    def test_retaining_operations_preserve_coalescing(self, relation):
        coalesced = run(Coalescing(LiteralRelation(relation)))
        child = LiteralRelation(coalesced)
        for operation in build_unary_operations(child):
            if operation.coalescing_behavior is not CoalescingBehavior.RETAINS:
                continue
            result = run(operation)
            if not result.schema.is_temporal:
                continue
            assert result.is_coalesced(), operation.label()

    @given(narrow_temporal_relations(max_size=6))
    def test_enforcing_operation_coalesces(self, relation):
        result = run(Coalescing(LiteralRelation(relation)))
        assert result.is_coalesced()
