"""The documentation is part of the tier-1 contract.

Three properties are enforced here so drift fails fast, locally, not just
in the CI docs job:

* the code blocks of ``docs/explain.md`` doctest clean — the EXPLAIN output
  shown in the guide is exactly what the code produces;
* ``docs/build.py`` builds the site with zero broken internal links and
  emits every expected page (including the docstring-generated API
  reference for the public surface);
* the link checker actually *detects* breakage (a canary, so a silent
  checker regression cannot hide real broken links).
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

sys.path.insert(0, str(DOCS_DIR))

import build as docs_build  # noqa: E402  (docs/build.py)


def test_explain_guide_doctests_pass():
    results = doctest.testfile(
        str(DOCS_DIR / "explain.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.attempted > 10, "the guide lost its examples"
    assert results.failed == 0


def test_site_builds_with_no_broken_links(tmp_path):
    errors = docs_build.build(tmp_path / "site")
    assert errors == []
    built = {p.relative_to(tmp_path / "site").as_posix() for p in (tmp_path / "site").rglob("*.html")}
    assert {
        "index.html",
        "architecture.html",
        "explain.html",
        "server.html",
        "observability.html",
        "robustness.html",
        "api/execution_options.html",
        "api/session.html",
        "api/temporaldatabase.html",
        "api/memosearch.html",
        "api/cardinalityestimator.html",
        "api/server.html",
        "api/tracer.html",
        "api/metricsregistry.html",
        "api/faultregistry.html",
        "api/cancellationtoken.html",
    } <= built


def test_api_pages_document_the_public_surface():
    for dotted in docs_build.API_SURFACE.values():
        page = docs_build.api_page_markdown(dotted)
        assert "(no class docstring)" not in page
        # Every page documents at least a couple of public methods.
        assert page.count("\n## ") >= 2


def test_link_checker_detects_breakage(tmp_path, monkeypatch):
    broken = tmp_path / "docs"
    broken.mkdir()
    (broken / "index.md").write_text(
        "# Home\n\nSee [missing](nowhere.md) and [bad anchor](#nope).\n",
        encoding="utf-8",
    )
    monkeypatch.setattr(docs_build, "DOCS_DIR", broken)
    monkeypatch.setattr(docs_build, "API_SURFACE", {})
    errors = docs_build.build(tmp_path / "out")
    assert len(errors) == 2
    assert any("nowhere.md" in e for e in errors)
    assert any("#nope" in e for e in errors)
