"""Tests for the stratum's efficient temporal operators and executor."""

import pytest
from hypothesis import given

from repro.core.equivalence import list_equivalent, multiset_equivalent
from repro.core.exceptions import EngineError
from repro.core.expressions import equals
from repro.core.operations import (
    BaseRelation,
    Coalescing,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    TransferToDBMS,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.dbms import ConventionalDBMS
from repro.stratum import (
    StratumExecutor,
    coalesce_fast,
    partition_plan,
    temporal_difference_fast,
    temporal_duplicate_elimination_fast,
    temporal_union_fast,
)
from repro.stratum.partition import DBMS, STRATUM, describe_partition
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA

from .strategies import narrow_temporal_relations

CONTEXT = EvaluationContext()


class TestFastImplementationsMatchReference:
    """The stratum operators are list-compatible with the reference semantics."""

    @given(narrow_temporal_relations(max_size=8))
    def test_rdupt(self, relation):
        reference = TemporalDuplicateElimination(LiteralRelation(relation)).evaluate(CONTEXT)
        fast = temporal_duplicate_elimination_fast(relation)
        assert list_equivalent(fast, reference)

    @given(narrow_temporal_relations(max_size=8))
    def test_coalesce(self, relation):
        reference = Coalescing(LiteralRelation(relation)).evaluate(CONTEXT)
        fast = coalesce_fast(relation)
        assert list_equivalent(fast, reference)

    @given(narrow_temporal_relations(max_size=6), narrow_temporal_relations(max_size=6))
    def test_temporal_difference(self, left, right):
        reference = TemporalDifference(LiteralRelation(left), LiteralRelation(right)).evaluate(
            CONTEXT
        )
        fast = temporal_difference_fast(left, right)
        assert list_equivalent(fast, reference)

    @given(narrow_temporal_relations(max_size=6), narrow_temporal_relations(max_size=6))
    def test_temporal_union(self, left, right):
        reference = TemporalUnion(LiteralRelation(left), LiteralRelation(right)).evaluate(CONTEXT)
        fast = temporal_union_fast(left, right)
        assert list_equivalent(fast, reference)

    def test_figure3(self, r1, r3):
        assert list_equivalent(temporal_duplicate_elimination_fast(r1), r3)


class TestPlanPartitioning:
    def plan(self):
        return Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(
                TransferToStratum(
                    Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
                )
            ),
        )

    def test_engine_assignment(self):
        partition = partition_plan(self.plan())
        assert partition.engine_of(()) == STRATUM
        assert partition.engine_of((0,)) == STRATUM
        assert partition.engine_of((0, 0)) == STRATUM  # the TS node itself
        assert partition.engine_of((0, 0, 0)) == DBMS
        assert partition.engine_of((0, 0, 0, 0)) == DBMS

    def test_fragments_and_counts(self):
        partition = partition_plan(self.plan())
        assert partition.dbms_fragments == [(0, 0, 0)]
        assert partition.transfer_count == 1
        counts = partition.operator_counts()
        assert counts[DBMS] == 2
        assert counts[STRATUM] == 3

    def test_td_switches_back_to_stratum(self):
        plan = TransferToStratum(
            Selection(
                equals("EmpName", "Anna"),
                TransferToDBMS(Coalescing(BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))),
            )
        )
        partition = partition_plan(plan)
        assert partition.engine_of((0,)) == DBMS  # the selection
        assert partition.engine_of((0, 0, 0)) == STRATUM  # the coalescing below TD

    def test_describe_partition_mentions_engines(self):
        rendered = describe_partition(self.plan())
        assert "[stratum]" in rendered and "[dbms]" in rendered


class TestStratumExecutor:
    def make_executor(self, employee, project):
        dbms = ConventionalDBMS()
        dbms.load_relation("EMPLOYEE", employee)
        dbms.load_relation("PROJECT", project)
        return StratumExecutor(dbms)

    def paper_plan(self):
        employee = Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        project = Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))
        difference = TemporalDifference(TemporalDuplicateElimination(employee), project)
        return Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(TemporalDuplicateElimination(difference)),
        )

    def test_pure_stratum_execution_matches_reference(self, employee, project, expected_result):
        executor = self.make_executor(employee, project)
        result = executor.execute(self.paper_plan())
        assert list_equivalent(result, expected_result)
        assert executor.report.dbms_calls == 0
        assert executor.report.implicit_transfers == 2

    def test_fully_pushed_down_execution(self, employee, project, expected_result):
        executor = self.make_executor(employee, project)
        plan = TransferToStratum(self.paper_plan())
        result = executor.execute(plan)
        assert multiset_equivalent(result, expected_result)
        assert executor.report.dbms_calls == 1
        assert executor.report.dbms_emulated_operations  # temporal work was emulated

    def test_mixed_execution_with_dbms_fragments(self, employee, project, expected_result):
        executor = self.make_executor(employee, project)
        employee_fragment = TransferToStratum(
            Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
        )
        project_fragment = TransferToStratum(
            Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))
        )
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(
                TemporalDuplicateElimination(
                    TemporalDifference(
                        TemporalDuplicateElimination(employee_fragment), project_fragment
                    )
                )
            ),
        )
        result = executor.execute(plan)
        assert list_equivalent(result, expected_result)
        assert executor.report.dbms_calls == 2
        assert executor.report.dbms_emulated_operations == []
        assert executor.report.stratum_operations == 5

    def test_td_islands_are_materialised(self, employee, project):
        executor = self.make_executor(employee, project)
        # The DBMS fragment sorts data that the stratum coalesced first.
        plan = TransferToStratum(
            Sort(
                OrderSpec.ascending("EmpName"),
                TransferToDBMS(Coalescing(BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))),
            )
        )
        result = executor.execute(plan)
        # Coalescing merges Anna's two adjacent Sales periods: 5 tuples -> 4.
        assert result.cardinality == 4
        assert executor.report.dbms_calls == 1

    def test_unbalanced_transfers_are_rejected(self, employee, project):
        executor = self.make_executor(employee, project)
        plan = TransferToStratum(TransferToStratum(BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)))
        with pytest.raises(EngineError):
            executor.execute(plan)
