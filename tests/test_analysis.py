"""Tests for the static plan analyses (guarantees, derived order and bounds)."""

from hypothesis import given

from repro.core.analysis import (
    derive_order,
    guarantees_coalesced,
    guarantees_no_duplicates,
    guarantees_no_snapshot_duplicates,
)
from repro.core.expressions import count, equals
from repro.core.operations import (
    Aggregation,
    BaseRelation,
    Coalescing,
    Difference,
    DuplicateElimination,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    TransferToStratum,
    UnionAll,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.workloads import EMPLOYEE_SCHEMA, employee_relation, figure3_r1, figure3_r3

from .strategies import narrow_temporal_relations

CONTEXT = EvaluationContext()


class TestDuplicateFreedomGuarantee:
    def test_base_relations_are_unknown(self):
        assert not guarantees_no_duplicates(BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))

    def test_literal_relations_are_inspected(self, r1, r3):
        assert not guarantees_no_duplicates(LiteralRelation(r1))
        assert guarantees_no_duplicates(LiteralRelation(r3))

    def test_eliminating_operations_guarantee(self, r1):
        assert guarantees_no_duplicates(DuplicateElimination(LiteralRelation(r1)))
        assert guarantees_no_duplicates(TemporalDuplicateElimination(LiteralRelation(r1)))
        assert guarantees_no_duplicates(Aggregation(["EmpName"], [count()], LiteralRelation(r1)))

    def test_retaining_operations_propagate(self, r3):
        plan = Selection(equals("EmpName", "Anna"), LiteralRelation(r3))
        assert guarantees_no_duplicates(plan)
        assert guarantees_no_duplicates(Sort(OrderSpec.ascending("EmpName"), plan))

    def test_generating_operations_lose_the_guarantee(self, r3):
        assert not guarantees_no_duplicates(Projection(["EmpName"], LiteralRelation(r3)))
        assert not guarantees_no_duplicates(
            UnionAll(LiteralRelation(r3), LiteralRelation(r3))
        )

    def test_difference_needs_only_the_left_guarantee(self, r1, r3):
        assert guarantees_no_duplicates(Difference(LiteralRelation(r3), LiteralRelation(r1)))
        assert not guarantees_no_duplicates(Difference(LiteralRelation(r1), LiteralRelation(r3)))

    @given(narrow_temporal_relations(max_size=6))
    def test_guarantee_is_sound(self, relation):
        plans = [
            DuplicateElimination(LiteralRelation(relation)),
            TemporalDuplicateElimination(LiteralRelation(relation)),
            Selection(equals("Name", "John"), TemporalDuplicateElimination(LiteralRelation(relation))),
        ]
        for plan in plans:
            if guarantees_no_duplicates(plan):
                assert not plan.evaluate(CONTEXT).has_duplicates()


class TestSnapshotDuplicateFreedomGuarantee:
    def test_rdupt_establishes_it(self, r1):
        assert guarantees_no_snapshot_duplicates(TemporalDuplicateElimination(LiteralRelation(r1)))

    def test_projection_destroys_it(self, employee):
        plan = Projection(
            ["EmpName", "T1", "T2"], TemporalDuplicateElimination(LiteralRelation(employee))
        )
        assert not guarantees_no_snapshot_duplicates(plan)

    def test_temporal_difference_left_propagates(self, r1, r3):
        plan = TemporalDifference(
            TemporalDuplicateElimination(LiteralRelation(r1)), LiteralRelation(r1)
        )
        assert guarantees_no_snapshot_duplicates(plan)

    def test_coalescing_retains_it(self, r3):
        assert guarantees_no_snapshot_duplicates(Coalescing(LiteralRelation(r3)))

    def test_temporal_union_needs_both(self, r1, r3):
        assert guarantees_no_snapshot_duplicates(
            TemporalUnion(LiteralRelation(r3), LiteralRelation(r3))
        )
        assert not guarantees_no_snapshot_duplicates(
            TemporalUnion(LiteralRelation(r3), LiteralRelation(r1))
        )

    @given(narrow_temporal_relations(max_size=6))
    def test_guarantee_is_sound(self, relation):
        plans = [
            TemporalDuplicateElimination(LiteralRelation(relation)),
            Coalescing(TemporalDuplicateElimination(LiteralRelation(relation))),
            Selection(equals("Name", "John"), TemporalDuplicateElimination(LiteralRelation(relation))),
        ]
        for plan in plans:
            if guarantees_no_snapshot_duplicates(plan):
                assert not plan.evaluate(CONTEXT).has_snapshot_duplicates()


class TestCoalescedGuarantee:
    def test_coalescing_establishes_it(self, r1):
        assert guarantees_coalesced(Coalescing(LiteralRelation(r1)))

    def test_selection_retains_it(self, r1):
        plan = Selection(equals("EmpName", "Anna"), Coalescing(LiteralRelation(r1)))
        assert guarantees_coalesced(plan)

    def test_literal_relations_are_inspected(self, expected_result, r1):
        assert guarantees_coalesced(LiteralRelation(expected_result))
        assert not guarantees_coalesced(LiteralRelation(r1))

    def test_temporal_difference_destroys_it(self, r3):
        plan = TemporalDifference(Coalescing(LiteralRelation(r3)), LiteralRelation(r3))
        assert not guarantees_coalesced(plan)

    @given(narrow_temporal_relations(max_size=6))
    def test_guarantee_is_sound(self, relation):
        plans = [
            Coalescing(LiteralRelation(relation)),
            Sort(OrderSpec.ascending("Name"), Coalescing(LiteralRelation(relation))),
            TransferToStratum(Coalescing(LiteralRelation(relation))),
        ]
        for plan in plans:
            if guarantees_coalesced(plan):
                result = plan.evaluate(CONTEXT)
                assert result.is_coalesced()


class TestDerivedOrder:
    def test_base_relation_known_order(self):
        scan = BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA, OrderSpec.ascending("EmpName"))
        assert derive_order(scan) == OrderSpec.ascending("EmpName")

    def test_sort_overrides(self, employee):
        plan = Sort(OrderSpec.ascending("Dept"), LiteralRelation(employee))
        assert derive_order(plan) == OrderSpec.ascending("Dept")

    def test_temporal_operations_drop_time_keys(self, employee):
        sorted_scan = Sort(OrderSpec.ascending("EmpName", "T1"), LiteralRelation(employee))
        plan = TemporalDuplicateElimination(sorted_scan)
        assert derive_order(plan) == OrderSpec.ascending("EmpName")
