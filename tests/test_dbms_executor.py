"""Tests for the DBMS physical planner/executor and the engine facade."""

import pytest

from repro.core.equivalence import multiset_equivalent
from repro.core.exceptions import CatalogError
from repro.core.expressions import And, Comparison, ComparisonOperator, attribute, count, equals, greater_than
from repro.core.operations import (
    Aggregation,
    BaseRelation,
    CartesianProduct,
    Coalescing,
    Difference,
    DuplicateElimination,
    Join,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    Union,
    UnionAll,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.dbms import ConventionalDBMS, PhysicalPlanner, extract_equi_join
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA


def employee_scan():
    return BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)


def project_scan():
    return BaseRelation("PROJECT", PROJECT_SCHEMA)


@pytest.fixture
def reference_context(employee, project):
    return EvaluationContext({"EMPLOYEE": employee, "PROJECT": project})


def check_matches_reference(dbms, plan, reference_context, optimize=True):
    """The DBMS promises multiset semantics: compare against reference evaluation."""
    produced = dbms.query(plan, optimize=optimize)
    expected = plan.evaluate(reference_context)
    assert multiset_equivalent(produced, expected), plan.pretty()
    return produced


class TestNativeExecution:
    def test_scan(self, dbms, reference_context):
        check_matches_reference(dbms, employee_scan(), reference_context)

    def test_missing_table(self, dbms):
        with pytest.raises(CatalogError):
            dbms.query(BaseRelation("NOPE", EMPLOYEE_SCHEMA))

    def test_selection_projection_sort(self, dbms, reference_context):
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Projection(["EmpName", "Dept"], Selection(equals("Dept", "Sales"), employee_scan())),
        )
        result = check_matches_reference(dbms, plan, reference_context)
        assert [tup["EmpName"] for tup in result] == ["Anna", "Anna", "John"]

    def test_duplicate_elimination(self, dbms, reference_context):
        plan = DuplicateElimination(Projection(["Dept"], employee_scan()))
        result = check_matches_reference(dbms, plan, reference_context)
        assert result.cardinality == 2

    def test_aggregation(self, dbms, reference_context):
        plan = Aggregation(["EmpName"], [count(alias="n")], employee_scan())
        result = check_matches_reference(dbms, plan, reference_context)
        assert {tup["EmpName"]: tup["n"] for tup in result} == {"John": 2, "Anna": 3}

    def test_cartesian_product_and_difference_and_unions(self, dbms, reference_context):
        product = CartesianProduct(employee_scan(), project_scan())
        check_matches_reference(dbms, product, reference_context)
        diff = Difference(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        check_matches_reference(dbms, diff, reference_context)
        union_all = UnionAll(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        check_matches_reference(dbms, union_all, reference_context)
        union = Union(Projection(["EmpName"], employee_scan()), Projection(["EmpName"], project_scan()))
        check_matches_reference(dbms, union, reference_context)

    def test_join_idiom_uses_hash_join(self, dbms, reference_context):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        plan = Join(predicate, employee_scan(), project_scan())
        explanation = dbms.explain(plan, optimize=False)
        assert "HashJoin" in explanation
        check_matches_reference(dbms, plan, reference_context)

    def test_selection_over_product_becomes_hash_join(self, dbms, reference_context):
        predicate = Comparison(
            ComparisonOperator.EQ, attribute("1.EmpName"), attribute("2.EmpName")
        )
        plan = Selection(predicate, CartesianProduct(employee_scan(), project_scan()))
        explanation = dbms.explain(plan, optimize=False)
        assert "HashJoin" in explanation
        check_matches_reference(dbms, plan, reference_context)

    def test_sort_result_is_ordered(self, dbms):
        plan = Sort(OrderSpec.of("T1 DESC"), employee_scan())
        result = dbms.query(plan)
        values = [tup["T1"] for tup in result]
        assert values == sorted(values, reverse=True)


class TestEmulatedTemporalOperations:
    def test_temporal_operations_are_emulated_and_counted(self, dbms, reference_context):
        plan = Coalescing(
            TemporalDuplicateElimination(Projection(["EmpName", "T1", "T2"], employee_scan()))
        )
        outcome = dbms.execute(plan, optimize=False)
        assert outcome.report.emulation_count == 2
        expected = plan.evaluate(reference_context)
        assert multiset_equivalent(outcome.relation, expected)

    def test_full_paper_query_fragment_is_executable_by_emulation(self, dbms, reference_context):
        left = TemporalDuplicateElimination(Projection(["EmpName", "T1", "T2"], employee_scan()))
        right = Projection(["EmpName", "T1", "T2"], project_scan())
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(TemporalDuplicateElimination(TemporalDifference(left, right))),
        )
        outcome = dbms.execute(plan, optimize=False)
        assert outcome.report.emulation_count >= 4
        expected = plan.evaluate(reference_context)
        assert multiset_equivalent(outcome.relation, expected)


class TestEquiJoinExtraction:
    def test_single_equality(self):
        predicate = Comparison(ComparisonOperator.EQ, attribute("A"), attribute("B"))
        condition = extract_equi_join(predicate, ["A"], ["B"])
        assert condition.left_keys == ("A",)
        assert condition.right_keys == ("B",)
        assert condition.residual is None

    def test_reversed_sides(self):
        predicate = Comparison(ComparisonOperator.EQ, attribute("B"), attribute("A"))
        condition = extract_equi_join(predicate, ["A"], ["B"])
        assert condition.left_keys == ("A",)

    def test_conjunction_with_residual(self):
        predicate = And(
            Comparison(ComparisonOperator.EQ, attribute("A"), attribute("B")),
            greater_than("C", 5),
        )
        condition = extract_equi_join(predicate, ["A", "C"], ["B"])
        assert condition.left_keys == ("A",)
        assert condition.residual is not None

    def test_no_equality_returns_none(self):
        assert extract_equi_join(greater_than("A", 5), ["A"], ["B"]) is None


class TestEngineFacade:
    def test_load_and_statistics(self, employee, project):
        engine = ConventionalDBMS()
        engine.load_relation("EMPLOYEE", employee)
        engine.load_relation("PROJECT", project)
        assert engine.statistics() == {"EMPLOYEE": 5, "PROJECT": 8}

    def test_optimizer_is_applied_by_default(self, dbms):
        plan = Selection(equals("Dept", "Sales"), Projection(["EmpName", "Dept"], employee_scan()))
        outcome = dbms.execute(plan)
        # The optimizer pushes the selection below the projection.
        assert isinstance(outcome.optimized_plan, Projection)

    def test_explain_renders_physical_plan(self, dbms):
        plan = Sort(OrderSpec.ascending("EmpName"), employee_scan())
        explanation = dbms.explain(plan)
        assert "Sort" in explanation and "TableScan" in explanation
