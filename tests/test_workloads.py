"""Tests for the paper's example data and the synthetic workload generators."""

import pytest

from repro.core.relation import Relation
from repro.workloads import (
    WorkloadParameters,
    employee_relation,
    expected_result_relation,
    figure3_r1,
    figure3_r3,
    generate_assignment_history,
    generate_employees,
    generate_projects,
    project_relation,
    scaled_paper_workload,
)


class TestFigure1Data:
    def test_employee_shape(self, employee):
        assert employee.cardinality == 5
        assert employee.schema.attributes == ("EmpName", "Dept", "T1", "T2")

    def test_project_shape(self, project):
        assert project.cardinality == 8
        assert project.schema.attributes == ("EmpName", "Prj", "T1", "T2")

    def test_expected_result_properties(self, expected_result):
        assert expected_result.cardinality == 10
        assert expected_result.is_coalesced()
        assert not expected_result.has_snapshot_duplicates()
        names = [tup["EmpName"] for tup in expected_result]
        assert names == sorted(names)

    def test_figure3_relations(self, r1, r3):
        assert r1.cardinality == 5
        assert r3.cardinality == 4
        assert r1.has_snapshot_duplicates()
        assert not r3.has_snapshot_duplicates()


class TestGenerators:
    def test_reproducibility(self):
        params = WorkloadParameters(tuples=200, seed=3)
        assert generate_employees(params) == generate_employees(params)
        assert generate_projects(params) == generate_projects(params)

    def test_requested_cardinality(self):
        params = WorkloadParameters(tuples=137)
        assert generate_employees(params).cardinality == 137

    def test_schema_matches_paper(self):
        relation = generate_employees(WorkloadParameters(tuples=10))
        assert relation.schema.attributes == ("EmpName", "Dept", "T1", "T2")

    def test_duplicate_ratio_produces_duplicates(self):
        params = WorkloadParameters(tuples=300, duplicate_ratio=0.4, seed=1)
        relation = generate_employees(params)
        assert relation.has_duplicates()

    def test_zero_ratios_produce_plain_histories(self):
        params = WorkloadParameters(
            tuples=100, duplicate_ratio=0.0, adjacency_ratio=0.0, overlap_ratio=0.0
        )
        relation = generate_employees(params)
        assert relation.cardinality == 100

    def test_adjacency_creates_coalescing_opportunities(self):
        params = WorkloadParameters(tuples=400, adjacency_ratio=0.5, overlap_ratio=0.0, seed=5)
        relation = generate_employees(params)
        assert not relation.is_coalesced()

    def test_overlap_creates_snapshot_duplicates(self):
        params = WorkloadParameters(tuples=400, overlap_ratio=0.5, adjacency_ratio=0.0, seed=5)
        relation = generate_employees(params)
        assert relation.has_snapshot_duplicates()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParameters(duplicate_ratio=0.9, adjacency_ratio=0.9)
        with pytest.raises(ValueError):
            WorkloadParameters(entities=0)

    def test_assignment_history(self):
        relation = generate_assignment_history(tuples=50, seed=2)
        assert relation.cardinality == 50
        assert relation.schema.attributes == ("Entity", "Value", "T1", "T2")

    def test_scaled_paper_workload(self):
        employees, projects = scaled_paper_workload(scale=20)
        assert employees.cardinality == 100
        assert projects.cardinality == 160
        assert employees.schema.attributes == ("EmpName", "Dept", "T1", "T2")
        assert projects.schema.attributes == ("EmpName", "Prj", "T1", "T2")
