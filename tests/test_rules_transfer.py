"""Unit tests for the transfer rules of the stratum architecture (Section 4.5)."""

from repro.core.equivalence import EquivalenceType, list_equivalent, multiset_equivalent
from repro.core.expressions import equals
from repro.core.operations import (
    Coalescing,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TransferToDBMS,
    TransferToStratum,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.rules import CONVENTIONAL_OPERATIONS, rules_by_name
from repro.workloads import figure3_r1, figure3_r3

CONTEXT = EvaluationContext()
RULES = rules_by_name()


def run(op):
    return op.evaluate(CONTEXT)


class TestRoundTripElimination:
    def test_ts_td_roundtrip(self, r1):
        plan = TransferToStratum(TransferToDBMS(LiteralRelation(r1)))
        application = RULES["T-roundtrip-SD"].apply(plan)
        assert application is not None
        assert application.replacement == LiteralRelation(r1)
        assert multiset_equivalent(run(plan), run(application.replacement))

    def test_td_ts_roundtrip(self, r1):
        plan = TransferToDBMS(TransferToStratum(LiteralRelation(r1)))
        application = RULES["T-roundtrip-DS"].apply(plan)
        assert application is not None
        assert multiset_equivalent(run(plan), run(application.replacement))

    def test_no_match_on_single_transfer(self, r1):
        assert RULES["T-roundtrip-SD"].apply(TransferToStratum(LiteralRelation(r1))) is None


class TestMoveToStratum:
    def test_unary_operation_moves_above_the_transfer(self, r1):
        plan = TransferToStratum(Coalescing(LiteralRelation(r1)))
        application = RULES["T-to-stratum"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, Coalescing)
        assert isinstance(rewritten.child, TransferToStratum)
        assert multiset_equivalent(run(plan), run(rewritten))

    def test_binary_operation_moves_above_the_transfer(self, r3, r1):
        plan = TransferToStratum(
            TemporalDifference(LiteralRelation(r3), LiteralRelation(r1))
        )
        application = RULES["T-to-stratum"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, TemporalDifference)
        assert all(isinstance(child, TransferToStratum) for child in rewritten.children)
        assert multiset_equivalent(run(plan), run(rewritten))

    def test_sort_moves_with_list_equivalence(self, r1):
        plan = TransferToStratum(Sort(OrderSpec.ascending("EmpName"), LiteralRelation(r1)))
        application = RULES["T-to-stratum"].apply(plan)
        assert application is not None
        assert application.equivalence is EquivalenceType.LIST
        assert list_equivalent(run(plan), run(application.replacement))

    def test_nonsort_moves_are_multiset_only(self, r1):
        plan = TransferToStratum(Coalescing(LiteralRelation(r1)))
        application = RULES["T-to-stratum"].apply(plan)
        assert application.equivalence is EquivalenceType.MULTISET

    def test_does_not_move_leaves_or_transfers(self, r1):
        assert RULES["T-to-stratum"].apply(TransferToStratum(LiteralRelation(r1))) is None
        assert (
            RULES["T-to-stratum"].apply(TransferToStratum(TransferToDBMS(LiteralRelation(r1))))
            is None
        )


class TestMoveToDBMS:
    def test_conventional_operation_moves_below_the_transfer(self, r1):
        plan = Selection(equals("EmpName", "Anna"), TransferToStratum(LiteralRelation(r1)))
        application = RULES["T-to-dbms"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, TransferToStratum)
        assert isinstance(rewritten.child, Selection)
        assert multiset_equivalent(run(plan), run(rewritten))

    def test_sort_moves_with_list_equivalence(self, r1):
        plan = Sort(OrderSpec.ascending("EmpName"), TransferToStratum(LiteralRelation(r1)))
        application = RULES["T-to-dbms"].apply(plan)
        assert application is not None
        assert application.equivalence is EquivalenceType.LIST
        assert list_equivalent(run(plan), run(application.replacement))

    def test_temporal_operations_never_move_into_the_dbms(self, r1):
        plan = Coalescing(TransferToStratum(LiteralRelation(r1)))
        assert RULES["T-to-dbms"].apply(plan) is None

    def test_requires_all_inputs_to_come_from_the_dbms(self, r1, r3):
        plan = Projection(["EmpName"], LiteralRelation(r1))
        assert RULES["T-to-dbms"].apply(plan) is None

    def test_conventional_operations_catalogue(self):
        names = {operation.__name__ for operation in CONVENTIONAL_OPERATIONS}
        assert "Selection" in names and "Sort" in names
        assert "Coalescing" not in names and "TemporalDifference" not in names
