"""Differential tests for the stratum's pipelined physical operators.

Every physical operator must be **list-compatible** with the reference
semantics — the identical tuple sequence, not merely the same multiset
(order-sensitivity, Section 6).  The property tests cross-check randomized
join-shaped plans tuple-for-tuple against ``Operation.evaluate``; the unit
tests pin the algorithm selection, the predicate split, the executor's
per-node accounting and the EXPLAIN annotation.
"""

from hypothesis import given, settings

from repro.core.cost import Engine, cost_annotations
from repro.core.expressions import (
    And,
    AttributeRef,
    Comparison,
    ComparisonOperator,
    Literal,
    equals,
)
from repro.core.joinsplit import (
    split_for_join,
    split_for_product,
    split_for_selection,
    split_product_predicate,
    stratum_physical_description,
)
from repro.core.operations import (
    CartesianProduct,
    Join,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalCartesianProduct,
    TemporalJoin,
)
from repro.core.operations.base import EvaluationContext, ROOT_PATH
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.core.tuples import Tuple
from repro.dbms import ConventionalDBMS
from repro.stratum import StratumExecutor
from repro.stratum.physical import (
    HashJoinOp,
    IntervalJoinOp,
    NestedLoopJoinOp,
    lower_plan,
)
from repro.workloads import employee_relation, project_relation

from .strategies import (
    JOIN_RIGHT_SCHEMA,
    TEMPORAL_SCHEMA,
    join_right_relations,
    join_shaped_plans,
    temporal_relations,
)

CONTEXT = EvaluationContext()


def run_stratum(plan):
    return StratumExecutor(ConventionalDBMS()).execute(plan)


def assert_list_identical(fast: Relation, reference: Relation):
    assert fast.schema.attributes == reference.schema.attributes
    assert list(fast.tuples) == list(reference.tuples)


EQUI = Comparison(ComparisonOperator.EQ, AttributeRef("1.Name"), AttributeRef("2.Name"))
OVERLAP = (
    Comparison(ComparisonOperator.LT, AttributeRef("1.T1"), AttributeRef("2.T2")),
    Comparison(ComparisonOperator.LT, AttributeRef("2.T1"), AttributeRef("1.T2")),
)


def left_rel(*rows):
    return LiteralRelation(Relation.from_rows(TEMPORAL_SCHEMA, rows))


def right_rel(*rows):
    return LiteralRelation(Relation.from_rows(JOIN_RIGHT_SCHEMA, rows))


SAMPLE_LEFT = left_rel(
    ("John", "Sales", 1, 5),
    ("Anna", "Ads", 2, 8),
    ("John", "Sales", 4, 9),
    ("Mia", "Ads", 3, 6),
)
SAMPLE_RIGHT = right_rel(
    ("John", "X", 2, 6),
    ("Mia", "Y", 1, 4),
    ("John", "Z", 7, 9),
    ("Anna", "X", 5, 7),
)


class TestDifferential:
    """Randomized plans: physical output == reference output, tuple for tuple."""

    @settings(max_examples=120, deadline=None)
    @given(join_shaped_plans())
    def test_join_shaped_plans_match_reference(self, plan):
        assert_list_identical(run_stratum(plan), plan.evaluate(CONTEXT))

    @settings(deadline=None)
    @given(temporal_relations(max_size=6), join_right_relations(max_size=6))
    def test_hash_temporal_join(self, left, right):
        plan = TemporalJoin(EQUI, LiteralRelation(left), LiteralRelation(right))
        assert_list_identical(run_stratum(plan), plan.evaluate(CONTEXT))

    @settings(deadline=None)
    @given(temporal_relations(max_size=6), join_right_relations(max_size=6))
    def test_interval_join_from_overlap_conjuncts(self, left, right):
        plan = Join(And(*OVERLAP), LiteralRelation(left), LiteralRelation(right))
        assert_list_identical(run_stratum(plan), plan.evaluate(CONTEXT))

    def test_paper_relations_join(self):
        predicate = Comparison(
            ComparisonOperator.EQ, AttributeRef("1.EmpName"), AttributeRef("2.EmpName")
        )
        plan = TemporalJoin(
            predicate,
            LiteralRelation(employee_relation()),
            LiteralRelation(project_relation()),
        )
        result = run_stratum(plan)
        assert_list_identical(result, plan.evaluate(CONTEXT))
        assert result.cardinality > 0


class TestAlgorithmSelection:
    """The predicate split picks the algorithm the issue prescribes."""

    def lowered(self, plan):
        return lower_plan(plan, ROOT_PATH, lambda node, path: node.relation)

    def test_equi_predicate_selects_hash_join(self):
        plan = TemporalJoin(EQUI, SAMPLE_LEFT, SAMPLE_RIGHT)
        assert isinstance(self.lowered(plan), HashJoinOp)

    def test_selection_over_product_fuses_to_hash_join(self):
        plan = Selection(
            And(EQUI, equals("Code", "X")), CartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT)
        )
        root = self.lowered(plan)
        assert isinstance(root, HashJoinOp)
        assert root.paths == (ROOT_PATH, (0,))

    def test_temporal_product_selects_interval_join(self):
        plan = TemporalCartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT)
        assert isinstance(self.lowered(plan), IntervalJoinOp)

    def test_overlap_conjuncts_select_interval_join(self):
        plan = Selection(And(*OVERLAP), CartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT))
        assert isinstance(self.lowered(plan), IntervalJoinOp)

    def test_keyless_predicate_falls_back_to_nested_loop(self):
        plan = Join(equals("Code", "X"), SAMPLE_LEFT, SAMPLE_RIGHT)
        assert isinstance(self.lowered(plan), NestedLoopJoinOp)

    def test_split_classifies_conjuncts(self):
        predicate = And(EQUI, *OVERLAP, equals("Dept", "Sales"))
        split = split_product_predicate(
            predicate,
            ["1.Name", "Dept", "1.T1", "1.T2"],
            ["2.Name", "Code", "2.T1", "2.T2"],
            temporal=False,
        )
        assert split.algorithm == "hash"
        assert split.equi_names == (("1.Name", "2.Name"),)
        # With equi keys available, the overlap pair stays in the residual.
        assert split.overlap_names is None
        assert split.residual is not None

    def test_split_extracts_overlap_without_equi(self):
        split = split_product_predicate(
            And(*OVERLAP, equals("Dept", "Sales")),
            ["1.Name", "Dept", "1.T1", "1.T2"],
            ["2.Name", "Code", "2.T1", "2.T2"],
            temporal=False,
        )
        assert split.algorithm == "interval"
        assert split.overlap_names == ("1.T1", "1.T2", "2.T1", "2.T2")
        assert str(split.residual) == "Dept = 'Sales'"

    def test_fresh_period_attributes_are_never_join_keys(self):
        predicate = Comparison(ComparisonOperator.EQ, AttributeRef("T1"), AttributeRef("2.T1"))
        plan = TemporalJoin(predicate, SAMPLE_LEFT, SAMPLE_RIGHT)
        split = split_for_join(plan)
        assert split.equi_names == ()
        assert split.residual == predicate
        assert_list_identical(run_stratum(plan), plan.evaluate(CONTEXT))

    def test_split_helpers_reject_other_nodes(self):
        assert split_for_join(Selection(Literal(True), SAMPLE_LEFT)) is None
        assert split_for_selection(Selection(Literal(True), SAMPLE_LEFT)) is None
        assert split_for_product(SAMPLE_LEFT) is None


class TestExecutorAccounting:
    def test_fused_product_reports_no_rows(self):
        plan = Selection(EQUI, TemporalCartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT))
        executor = StratumExecutor(ConventionalDBMS())
        result = executor.execute(plan)
        report = executor.report
        # The selection's output is counted; the fused-away product's is not
        # (it never materialises), while the literal leaves are.
        assert report.node_rows[ROOT_PATH] == len(result)
        assert (0,) not in report.node_rows
        assert report.stratum_operations == 2

    def test_pipelined_region_counts_every_node(self):
        plan = Sort(
            OrderSpec.ascending("Dept"),
            Selection(
                Comparison(ComparisonOperator.NE, AttributeRef("Code"), Literal("X")),
                TemporalJoin(EQUI, SAMPLE_LEFT, SAMPLE_RIGHT),
            ),
        )
        executor = StratumExecutor(ConventionalDBMS())
        result = executor.execute(plan)
        rows = executor.report.node_rows
        assert rows[ROOT_PATH] == len(result)
        assert rows[(0,)] == len(result)
        assert (0, 0) in rows
        assert executor.report.stratum_operations == 3


class TestExplainAnnotation:
    def test_cost_annotations_carry_the_algorithm(self):
        plan = Selection(EQUI, TemporalCartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT))
        annotations = cost_annotations(plan)
        assert annotations[ROOT_PATH].physical == "hash: 1.Name=2.Name ∧ overlap"
        assert annotations[(0,)].physical == "fused into σ"
        assert annotations[(0, 0)].physical is None

    def test_description_matches_what_the_executor_runs(self):
        for plan in (
            TemporalJoin(EQUI, SAMPLE_LEFT, SAMPLE_RIGHT),
            Join(And(*OVERLAP), SAMPLE_LEFT, SAMPLE_RIGHT),
            CartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT),
        ):
            description, fuses = stratum_physical_description(plan)
            root = lower_plan(plan, ROOT_PATH, lambda node, path: node.relation)
            assert not fuses
            assert description in root.describe()

    def test_dbms_side_annotations_cover_only_the_fused_hash_pair(self):
        from repro.core.operations import TransferToStratum

        # The DBMS substrate fuses an equi σ(×) into its native hash join
        # (repro.dbms.executor), so that pair is annotated like the
        # stratum's fusion; every other DBMS-side shape runs the reference
        # multiset operators and stays unannotated.
        plan = TransferToStratum(Selection(EQUI, CartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT)))
        annotations = cost_annotations(plan, engine=Engine.STRATUM)
        assert annotations[(0,)].physical == "hash: 1.Name=2.Name"
        assert annotations[(0, 0)].physical == "fused into σ"
        keyless = TransferToStratum(
            Selection(OVERLAP[0], CartesianProduct(SAMPLE_LEFT, SAMPLE_RIGHT))
        )
        keyless_annotations = cost_annotations(keyless, engine=Engine.STRATUM)
        assert keyless_annotations[(0,)].physical is None
        assert keyless_annotations[(0, 0)].physical is None


class TestSchemaPermutationFallback:
    """Compiled positional access falls back for attribute-permuted tuples."""

    def test_filter_over_permuted_tuples(self):
        base = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)], name="C")
        permuted = RelationSchema.snapshot([("Amount", INTEGER), ("Name", STRING)], name="C")
        tuples = [
            Tuple(permuted, {"Amount": 1, "Name": "John"}),
            Tuple(base, {"Name": "Anna", "Amount": 2}),
            Tuple(permuted, {"Amount": 3, "Name": "Mia"}),
        ]
        relation = Relation(base, tuples)
        plan = Selection(
            Comparison(ComparisonOperator.GT, AttributeRef("Amount"), Literal(1)),
            LiteralRelation(relation),
        )
        assert_list_identical(run_stratum(plan), plan.evaluate(CONTEXT))
