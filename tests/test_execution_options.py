"""The redesigned configuration surface: ``ExecutionOptions`` everywhere.

One frozen options object rides through all three constructors
(``TemporalDatabase``, ``Session``, ``Server``); the pre-existing
per-constructor keywords keep working through a shim that emits exactly one
``DeprecationWarning`` per constructor call.  These tests pin the
round-trip, the warning contract, behavioral equivalence of the two
spellings, and the ``repro.connect`` facade.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import ExecutionOptions, Session, TemporalDatabase, connect
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.server import Server
from repro.workloads import employee_relation


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestOptionsObject:
    def test_frozen_and_hashable(self):
        options = ExecutionOptions(use_statistics=True)
        with pytest.raises(Exception):
            options.use_statistics = False
        assert hash(options) == hash(ExecutionOptions(use_statistics=True))

    def test_replace_derives_variants(self):
        base = ExecutionOptions(batch_size=64)
        derived = base.replace(use_statistics=True)
        assert derived.batch_size == 64 and derived.use_statistics is True
        assert base.use_statistics is False  # the original is untouched

    def test_non_defaults_names_the_turned_knobs(self):
        assert ExecutionOptions().non_defaults() == {}
        assert ExecutionOptions(batch_size=None, cancellation=False).non_defaults() == {
            "batch_size": None,
            "cancellation": False,
        }


class TestRoundTrip:
    """``options=`` reaches execution through every constructor."""

    def test_temporal_database(self):
        options = ExecutionOptions(use_statistics=True, optimize_queries=False)
        db = TemporalDatabase(options=options)
        assert db.options is options
        assert db.use_statistics is True
        assert db.optimize_queries is False

    def test_session_inherits_database_options(self):
        db = TemporalDatabase(options=ExecutionOptions(batch_size=32))
        assert Session(db).options.batch_size == 32
        assert db.session().options.batch_size == 32

    def test_session_own_options_win(self):
        db = TemporalDatabase(options=ExecutionOptions(batch_size=32))
        session = Session(db, options=ExecutionOptions(batch_size=8))
        assert session.options.batch_size == 8

    def test_server_applies_options_to_itself_and_workers(self):
        tracer = Tracer()
        options = ExecutionOptions(
            tracer=tracer, cancellation=False, max_rows_per_request=100
        )
        server = Server(options=options)
        assert server.options is options
        assert server.tracer is tracer
        assert server.cancellation is False
        assert server.max_rows_per_request == 100
        assert server.database.options is options

    def test_server_inherits_database_options(self):
        db = TemporalDatabase(options=ExecutionOptions(batch_size=16))
        assert Server(database=db).options.batch_size == 16

    def test_server_defaults_to_a_private_registry(self):
        assert isinstance(Server().metrics, MetricsRegistry)
        registry = MetricsRegistry()
        assert Server(options=ExecutionOptions(metrics=registry)).metrics is registry


class TestDeprecationShim:
    """Legacy keywords work and warn exactly once, naming every keyword."""

    def test_database_legacy_kwargs_warn_once(self):
        with pytest.warns(DeprecationWarning) as caught:
            db = TemporalDatabase(use_statistics=True, optimize_queries=False)
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "TemporalDatabase" in message
        assert "use_statistics" in message and "optimize_queries" in message
        assert "ExecutionOptions" in message
        assert db.use_statistics is True and db.optimize_queries is False

    def test_session_legacy_kwargs_warn_once(self):
        tracer = Tracer()
        with pytest.warns(DeprecationWarning) as caught:
            session = Session(tracer=tracer, slow_query_seconds=0.5)
        assert len(_deprecations(caught)) == 1
        assert session.tracer is tracer
        assert session.options.slow_query_seconds == 0.5

    def test_server_legacy_kwargs_warn_once(self):
        with pytest.warns(DeprecationWarning) as caught:
            server = Server(cancellation=False, max_rows_per_request=10)
        assert len(_deprecations(caught)) == 1
        assert server.cancellation is False and server.max_rows_per_request == 10

    def test_options_path_is_warning_free(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            TemporalDatabase(options=ExecutionOptions(use_statistics=True))
            Session(options=ExecutionOptions(slow_query_seconds=1.0))
            with Server(options=ExecutionOptions(cancellation=False)) as server:
                server.database.register("EMPLOYEE", employee_relation())
                assert server.query("SELECT EmpName FROM EMPLOYEE").ok
        assert _deprecations(caught) == []

    def test_both_spellings_behave_identically(self):
        legacy_db = None
        with pytest.warns(DeprecationWarning):
            legacy_db = TemporalDatabase(use_statistics=True)
        blessed_db = TemporalDatabase(options=ExecutionOptions(use_statistics=True))
        for db in (legacy_db, blessed_db):
            db.register("EMPLOYEE", employee_relation())
        query = "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'"
        assert list(legacy_db.query(query).tuples) == list(blessed_db.query(query).tuples)


class TestFacade:
    def test_connect_returns_a_wired_database(self):
        db = connect()
        assert isinstance(db, TemporalDatabase)
        assert db.options == ExecutionOptions()
        custom = connect(ExecutionOptions(batch_size=None))
        assert custom.options.batch_size is None
        assert custom.session().options.batch_size is None

    def test_blessed_names_lead_the_public_all(self):
        blessed = {
            "connect",
            "ExecutionOptions",
            "DEFAULT_BATCH_SIZE",
            "TemporalDatabase",
            "Session",
            "Relation",
            "RelationSchema",
            "Tuple",
            "__version__",
        }
        assert blessed <= set(repro.__all__)
        # The facade names come first: the reading order starts at connect().
        assert repro.__all__[0] == "connect"
        for name in blessed:
            assert getattr(repro, name) is not None

    def test_end_to_end_through_the_facade(self):
        db = connect(ExecutionOptions(batch_size=8))
        db.register("EMPLOYEE", employee_relation())
        result = db.query(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales' ORDER BY EmpName"
        )
        assert [t["EmpName"] for t in result.tuples] == sorted(
            t["EmpName"] for t in result.tuples
        )
        assert result.cardinality > 0
