"""The fault-injection registry and its injection points across the stack."""

from __future__ import annotations

import time

import pytest

from repro.core.exceptions import (
    CancelledError,
    DataCorruptionError,
    EngineError,
    InjectedFaultError,
    ReproError,
    SchemaError,
    error_code,
)
from repro.faults import (
    FAULT_POINTS,
    FAULTS,
    CancellationToken,
    ExecutionControl,
    FaultRegistry,
    FaultSpec,
)
from repro.session import Session
from repro.tsql import parse_statement


def make_session(temporal_db):
    return Session(temporal_db)


class TestFaultSpec:
    def test_validates_kind_latency_and_rate(self):
        with pytest.raises(ValueError):
            FaultSpec("dbms.scan", "explode")
        with pytest.raises(ValueError):
            FaultSpec("dbms.scan", "latency", latency=0.0)
        with pytest.raises(ValueError):
            FaultSpec("dbms.scan", "error", rate=0.0)
        with pytest.raises(ValueError):
            FaultSpec("dbms.scan", "error", rate=1.5)

    def test_times_bounds_firing(self):
        spec = FaultSpec("dbms.scan", "error", times=2)
        assert [spec.should_fire() for _ in range(4)] == [True, True, False, False]
        assert spec.fired == 2

    def test_unbounded_times(self):
        spec = FaultSpec("dbms.scan", "error", times=None)
        assert all(spec.should_fire() for _ in range(10))

    def test_seeded_rate_is_deterministic(self):
        a = FaultSpec("dbms.scan", "error", times=None, rate=0.5, seed=42)
        b = FaultSpec("dbms.scan", "error", times=None, rate=0.5, seed=42)
        decisions_a = [a.should_fire() for _ in range(50)]
        decisions_b = [b.should_fire() for _ in range(50)]
        assert decisions_a == decisions_b
        assert True in decisions_a and False in decisions_a

    def test_make_exception_default_class_and_template(self):
        assert isinstance(FaultSpec("dbms.scan", "error").make_exception(), InjectedFaultError)
        from_class = FaultSpec("dbms.scan", "error", exception=EngineError).make_exception()
        assert isinstance(from_class, EngineError)
        template = EngineError("disk on fire")
        first = FaultSpec("dbms.scan", "error", exception=template).make_exception()
        assert isinstance(first, EngineError) and first is not template
        assert str(first) == "disk on fire"


class TestFaultRegistry:
    def test_inactive_by_default_and_unknown_point_rejected(self):
        registry = FaultRegistry()
        assert registry.active is False
        with pytest.raises(ValueError, match="unknown fault point"):
            registry.arm("no.such.point")

    def test_armed_context_arms_and_disarms(self):
        registry = FaultRegistry()
        with registry.armed("dbms.scan", times=1) as spec:
            assert registry.active is True
            with pytest.raises(InjectedFaultError):
                registry.check("dbms.scan")
            assert spec.fired == 1
            registry.check("dbms.scan")  # times exhausted: no-op
        assert registry.active is False
        registry.check("dbms.scan")  # disarmed: no-op
        assert registry.fired("dbms.scan") == 1  # history survives disarm

    def test_reset_clears_everything(self):
        registry = FaultRegistry()
        registry.arm("dbms.scan")
        with pytest.raises(InjectedFaultError):
            registry.check("dbms.scan")
        registry.reset()
        assert registry.active is False
        assert registry.fired("dbms.scan") == 0
        assert registry.snapshot_fired() == {}

    def test_snapshot_fired_merges_live_and_history(self):
        registry = FaultRegistry()
        with registry.armed("tsql.parse", times=1):
            with pytest.raises(InjectedFaultError):
                registry.check("tsql.parse")
        registry.arm("dbms.scan", times=2)
        with pytest.raises(InjectedFaultError):
            registry.check("dbms.scan")
        assert registry.snapshot_fired() == {"tsql.parse": 1, "dbms.scan": 1}

    def test_latency_fault_sleeps(self):
        registry = FaultRegistry()
        with registry.armed("dbms.scan", kind="latency", latency=0.05):
            started = time.perf_counter()
            registry.check("dbms.scan")
            assert time.perf_counter() - started >= 0.045

    def test_latency_sleep_interrupted_by_cancellation(self):
        registry = FaultRegistry()
        token = CancellationToken()
        token.cancel("stop the stall")
        with registry.armed("dbms.scan", kind="latency", latency=10.0):
            started = time.perf_counter()
            with pytest.raises(CancelledError):
                registry.check("dbms.scan", token=token)
            assert time.perf_counter() - started < 1.0

    def test_corrupt_kind_raises_at_plain_check_sites(self):
        registry = FaultRegistry()
        with registry.armed("dbms.scan", kind="corrupt"):
            with pytest.raises(DataCorruptionError) as excinfo:
                registry.check("dbms.scan")
        assert excinfo.value.code == "DATA_CORRUPTED"

    def test_corrupt_rows_replaces_one_value_without_mutating_input(self):
        registry = FaultRegistry()
        rows = [["Alice", "Sales", 1, 5]]
        with registry.armed("catalog.append", kind="corrupt"):
            corrupted = registry.corrupt_rows("catalog.append", rows)
        assert rows == [["Alice", "Sales", 1, 5]]
        assert corrupted[0][0] is not rows[0][0]
        assert corrupted[0][1:] == ["Sales", 1, 5]

    def test_corrupt_rows_passthrough_when_unarmed_or_error_kind(self):
        registry = FaultRegistry()
        rows = (("Alice", "Sales", 1, 5),)
        assert registry.corrupt_rows("catalog.append", rows) is rows
        with registry.armed("catalog.append", kind="error"):
            with pytest.raises(InjectedFaultError):
                registry.corrupt_rows("catalog.append", rows)

    def test_every_declared_point_arms(self):
        registry = FaultRegistry()
        for point in FAULT_POINTS:
            registry.arm(point, times=1)
        assert registry.active is True
        registry.reset()


class TestInjectionSites:
    """Every declared point actually fires from its production call site."""

    def test_parse_point(self):
        with FAULTS.armed("tsql.parse", times=1):
            with pytest.raises(InjectedFaultError):
                parse_statement("SELECT EmpName FROM EMPLOYEE")
        # the point disarms cleanly: parsing works again
        parse_statement("SELECT EmpName FROM EMPLOYEE")

    def test_bind_point(self, temporal_db):
        session = make_session(temporal_db)
        with FAULTS.armed("session.bind", times=1):
            with pytest.raises(InjectedFaultError):
                session.execute(
                    "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", params=("Sales",)
                )

    def test_memo_point_degrades_not_raises(self, temporal_db):
        session = make_session(temporal_db)
        with FAULTS.armed("search.memo", times=1):
            result = session.execute("SELECT DISTINCT EmpName FROM EMPLOYEE COALESCE")
        assert result.optimization.degraded == "memo_search:FAULT_INJECTED"

    def test_stratum_pull_point_degrades_to_reference(self, temporal_db, paper_statement):
        # The paper statement keeps temporal operators in the stratum, so
        # its pull loops run (a pure pushed-down query never reaches them).
        session = make_session(temporal_db)
        with FAULTS.armed("stratum.pull", times=1):
            result = session.execute(paper_statement)
        assert result.report.degraded_operations
        assert "FAULT_INJECTED" in result.report.degraded_operations[0]

    def test_dbms_scan_point(self, dbms):
        from repro.core.operations import BaseRelation
        from repro.workloads import EMPLOYEE_SCHEMA

        plan = BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)
        with FAULTS.armed("dbms.scan", times=1):
            with pytest.raises(InjectedFaultError):
                dbms.execute(plan, control=ExecutionControl())

    def test_catalog_append_corruption_detected_atomically(self, temporal_db):
        before = len(temporal_db.table("EMPLOYEE"))
        rows = [("Zara", "Sales", 1, 5), ("Yuri", "Toys", 2, 6)]
        with FAULTS.armed("catalog.append", kind="corrupt"):
            with pytest.raises(SchemaError):
                temporal_db.append("EMPLOYEE", rows)
        # detection happened before any mutation: no partial batch landed
        assert len(temporal_db.table("EMPLOYEE")) == before
        temporal_db.append("EMPLOYEE", rows)
        assert len(temporal_db.table("EMPLOYEE")) == before + 2

    def test_disabled_faults_leave_queries_untouched(self, temporal_db):
        assert FAULTS.active is False
        session = make_session(temporal_db)
        result = session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", ("Sales",))
        assert {t["EmpName"] for t in result.relation.tuples} == {"Anna", "John"}


class TestErrorTaxonomy:
    def test_every_repro_error_subclass_has_a_stable_code(self):
        seen = set()
        stack = [ReproError]
        while stack:
            cls = stack.pop()
            assert isinstance(cls.code, str) and cls.code, cls
            seen.add(cls)
            stack.extend(sub for sub in cls.__subclasses__() if sub not in seen)

    def test_error_code_of_foreign_exceptions_is_internal(self):
        assert error_code(ValueError("nope")) == "INTERNAL"
        assert error_code(KeyError("x")) == "INTERNAL"

    def test_error_code_reads_the_class_attribute(self):
        assert error_code(SchemaError("bad")) == "SCHEMA_ERROR"
        assert error_code(InjectedFaultError("boom")) == "FAULT_INJECTED"


class TestExecutionControlFaultGate:
    def test_tick_fires_armed_point(self):
        control = ExecutionControl()
        with FAULTS.armed("stratum.pull", times=1):
            with pytest.raises(InjectedFaultError):
                control.tick("stratum.pull")

    def test_guarded_checks_at_drain_start_and_every_interval(self):
        registry = FaultRegistry()
        registry.arm("dbms.scan", times=None)
        control = ExecutionControl(interval=10, faults=registry)
        with pytest.raises(InjectedFaultError):
            list(control.guarded(iter(range(100)), "dbms.scan"))
        registry.reset()
        # without faults the wrapper is transparent
        assert list(control.guarded(iter(range(25)), "dbms.scan")) == list(range(25))
