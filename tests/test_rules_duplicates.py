"""Unit tests for the duplicate-elimination rules D1–D6 (Figure 4)."""

from repro.core.equivalence import (
    list_equivalent,
    set_equivalent,
    snapshot_set_equivalent,
)
from repro.core.operations import (
    DuplicateElimination,
    LiteralRelation,
    TemporalDuplicateElimination,
    TemporalUnion,
    Union,
)
from repro.core.operations.base import EvaluationContext
from repro.core.relation import Relation
from repro.core.rules import rules_by_name
from repro.workloads import figure3_r1, figure3_r3

from .strategies import SNAPSHOT_SCHEMA

CONTEXT = EvaluationContext()
RULES = rules_by_name()


def run(op):
    return op.evaluate(CONTEXT)


def snapshot(*rows):
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


class TestD1:
    def test_removes_redundant_rdup(self):
        duplicate_free = LiteralRelation(snapshot(("a", 1), ("b", 2)))
        plan = DuplicateElimination(duplicate_free)
        application = RULES["D1"].apply(plan)
        assert application is not None
        assert application.replacement == duplicate_free
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_duplicate_freedom(self):
        plan = DuplicateElimination(LiteralRelation(snapshot(("a", 1), ("a", 1))))
        assert RULES["D1"].apply(plan) is None

    def test_does_not_match_temporal_arguments(self, r3):
        plan = DuplicateElimination(LiteralRelation(r3))
        assert RULES["D1"].apply(plan) is None

    def test_does_not_match_other_operations(self, r3):
        assert RULES["D1"].apply(LiteralRelation(r3)) is None


class TestD2:
    def test_removes_redundant_rdupt(self, r3):
        plan = TemporalDuplicateElimination(LiteralRelation(r3))
        application = RULES["D2"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_requires_snapshot_duplicate_freedom(self, r1):
        plan = TemporalDuplicateElimination(LiteralRelation(r1))
        assert RULES["D2"].apply(plan) is None

    def test_matches_above_another_rdupt(self, r1):
        plan = TemporalDuplicateElimination(TemporalDuplicateElimination(LiteralRelation(r1)))
        application = RULES["D2"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))


class TestD3:
    def test_drops_rdup_for_set_results(self):
        relation = snapshot(("a", 1), ("a", 1), ("b", 2))
        plan = DuplicateElimination(LiteralRelation(relation))
        application = RULES["D3"].apply(plan)
        assert application is not None
        assert set_equivalent(run(plan), run(application.replacement))
        # But not multiset equivalent: the rule really is only ≡S.
        assert run(plan).as_multiset() != run(application.replacement).as_multiset()


class TestD4:
    def test_drops_rdupt_for_snapshot_set_results(self, r1):
        plan = TemporalDuplicateElimination(LiteralRelation(r1))
        application = RULES["D4"].apply(plan)
        assert application is not None
        assert snapshot_set_equivalent(run(plan), run(application.replacement))


class TestD5:
    def test_pushes_rdup_below_union(self):
        left = snapshot(("a", 1), ("a", 1))
        right = snapshot(("a", 1), ("b", 2))
        plan = DuplicateElimination(Union(LiteralRelation(left), LiteralRelation(right)))
        application = RULES["D5"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, Union)
        assert isinstance(rewritten.left, DuplicateElimination)
        assert list_equivalent(run(plan), run(rewritten))

    def test_does_not_match_union_all(self):
        from repro.core.operations import UnionAll

        plan = DuplicateElimination(
            UnionAll(LiteralRelation(snapshot(("a", 1))), LiteralRelation(snapshot(("a", 1))))
        )
        assert RULES["D5"].apply(plan) is None


class TestD6:
    def test_pushes_rdupt_below_temporal_union(self, r1, r3):
        plan = TemporalDuplicateElimination(
            TemporalUnion(LiteralRelation(r1), LiteralRelation(r3))
        )
        application = RULES["D6"].apply(plan)
        assert application is not None
        rewritten = application.replacement
        assert isinstance(rewritten, TemporalUnion)
        assert list_equivalent(run(plan), run(rewritten))


class TestIdempotenceRules:
    def test_collapse_rdup(self):
        relation = snapshot(("a", 1), ("a", 1))
        plan = DuplicateElimination(DuplicateElimination(LiteralRelation(relation)))
        application = RULES["D-idem"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))

    def test_collapse_rdupt(self, r1):
        plan = TemporalDuplicateElimination(TemporalDuplicateElimination(LiteralRelation(r1)))
        application = RULES["DT-idem"].apply(plan)
        assert application is not None
        assert list_equivalent(run(plan), run(application.replacement))


class TestApplicationMetadata:
    def test_involved_paths_include_location_and_children(self, r3):
        plan = TemporalDuplicateElimination(LiteralRelation(r3))
        application = RULES["D2"].apply(plan)
        assert () in application.involved
        assert (0,) in application.involved

    def test_rule_catalogue_names(self):
        for name in ("D1", "D2", "D3", "D4", "D5", "D6"):
            assert name in RULES
