"""Tests for the cost-model calibration harness.

Wall-clock timings vary between machines and runs, so these tests only pin
down the *structure* of a fit: every constant lands inside its clamp range,
the DBMS can never come out "faster" at temporal work than the stratum's
purpose-built fast paths, and the raw measurements are reported.
"""

import pytest

from repro.core.cost import CostModel
from repro.stats import calibrate_cost_model
from repro.stats.calibration import PENALTY_RANGE, SPEED_RANGE, TRANSFER_RANGE
from repro.workloads import generate_assignment_history


@pytest.fixture(scope="module")
def result():
    return calibrate_cost_model(tuples=300, repeats=1)


class TestCalibration:
    def test_constants_land_in_their_clamp_ranges(self, result):
        model = result.model
        assert SPEED_RANGE[0] <= model.dbms_speed <= SPEED_RANGE[1]
        assert PENALTY_RANGE[0] <= model.dbms_temporal_penalty <= PENALTY_RANGE[1]
        assert TRANSFER_RANGE[0] <= model.transfer_cost <= TRANSFER_RANGE[1]

    def test_temporal_penalty_is_a_penalty(self, result):
        assert result.model.dbms_temporal_penalty >= 1.0

    def test_selectivity_constants_are_untouched(self, result):
        base = CostModel()
        assert result.model.selectivity == base.selectivity
        assert result.model.overlap_fraction == base.overlap_fraction
        assert result.model.default_base_cardinality == base.default_base_cardinality

    def test_measurements_cover_both_engines(self, result):
        engines = {measurement.engine for measurement in result.measurements}
        assert {"stratum", "dbms", "boundary"} <= engines
        assert all(measurement.seconds > 0 for measurement in result.measurements)
        assert all(measurement.tuples == 300 for measurement in result.measurements)

    def test_ratios_and_description(self, result):
        assert set(result.ratios) == {
            "selection_speed",
            "sort_speed",
            "temporal_penalty",
            "transfer_per_tuple",
        }
        text = result.describe()
        assert "dbms_speed" in text
        assert "transfer_cost" in text

    def test_accepts_a_caller_relation(self):
        relation = generate_assignment_history(120, entities=10, seed=3)
        fitted = calibrate_cost_model(repeats=1, relation=relation)
        assert fitted.measurements[0].tuples == 120
