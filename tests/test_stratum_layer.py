"""Unit tests for the TemporalDatabase facade and the query optimizer driver."""

import pytest

from repro.core.cost import CostModel
from repro.core.equivalence import multiset_equivalent
from repro.core.exceptions import CatalogError, ParseError
from repro.core.operations import BaseRelation, Coalescing, Projection, Sort, TransferToStratum
from repro.core.order_spec import OrderSpec
from repro.core.query import QueryResultSpec
from repro.core.rules import rules_by_name
from repro.stratum import TemporalDatabase, TemporalQueryOptimizer
from repro.workloads import EMPLOYEE_SCHEMA, employee_relation


class TestTemporalQueryOptimizer:
    def make_initial(self, temporal_db, paper_statement):
        return temporal_db.parse(paper_statement)

    def test_optimize_returns_cheaper_or_equal_plan(self, temporal_db, paper_statement):
        plan, spec = self.make_initial(temporal_db, paper_statement)
        optimizer = TemporalQueryOptimizer()
        outcome = optimizer.optimize(plan, spec, temporal_db.statistics())
        assert outcome.chosen_cost.total <= outcome.initial_cost.total
        assert outcome.initial_plan == plan
        # The default strategy is the memo search; it records its own statistics.
        assert outcome.enumeration is None
        assert outcome.search is not None
        assert outcome.plans_considered == outcome.search.statistics.plans_considered

    def test_exhaustive_strategy_remains_available(self, temporal_db, paper_statement):
        plan, spec = self.make_initial(temporal_db, paper_statement)
        optimizer = TemporalQueryOptimizer(strategy="exhaustive")
        outcome = optimizer.optimize(plan, spec, temporal_db.statistics())
        assert outcome.search is None
        assert outcome.plans_considered == len(outcome.enumeration)
        memo_outcome = TemporalQueryOptimizer().optimize(plan, spec, temporal_db.statistics())
        # Both strategies find the same minimum cost ...
        assert memo_outcome.chosen_cost.total == pytest.approx(outcome.chosen_cost.total)
        # ... but the memo search considers strictly fewer plans.
        assert memo_outcome.plans_considered < outcome.plans_considered

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            TemporalQueryOptimizer(strategy="bogus")

    def test_restricted_rule_set(self, temporal_db, paper_statement):
        plan, spec = self.make_initial(temporal_db, paper_statement)
        rules = rules_by_name()
        optimizer = TemporalQueryOptimizer(rules=[rules["D2"], rules["S2"]])
        outcome = optimizer.optimize(plan, spec, temporal_db.statistics())
        assert outcome.plans_considered <= 3

    def test_custom_cost_model_changes_choices(self, temporal_db, paper_statement):
        plan, spec = self.make_initial(temporal_db, paper_statement)
        dbms_biased = TemporalQueryOptimizer(cost_model=CostModel(dbms_speed=0.01, transfer_cost=0.0))
        stratum_biased = TemporalQueryOptimizer(cost_model=CostModel(dbms_speed=10.0, transfer_cost=5.0))
        statistics = temporal_db.statistics()
        dbms_choice = dbms_biased.optimize(plan, spec, statistics).chosen_plan
        stratum_choice = stratum_biased.optimize(plan, spec, statistics).chosen_plan
        # With wildly different engine speeds the chosen plans should differ
        # in how much work they leave in the DBMS (transfer placement).
        assert dbms_choice != stratum_choice

    def test_improvement_factor_of_identity(self, temporal_db, paper_statement):
        plan, spec = self.make_initial(temporal_db, paper_statement)
        optimizer = TemporalQueryOptimizer(rules=[])
        outcome = optimizer.optimize(plan, spec, temporal_db.statistics())
        assert outcome.plans_considered == 1
        assert outcome.improvement_factor == pytest.approx(1.0)


class TestTemporalDatabaseFacade:
    def test_register_rejects_duplicate_names(self, temporal_db):
        with pytest.raises(CatalogError):
            temporal_db.register("EMPLOYEE", employee_relation())

    def test_create_table_and_insert(self):
        database = TemporalDatabase()
        database.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        assert database.table("EMPLOYEE").is_empty()
        database.insert("EMPLOYEE", [("Mia", "Sales", 1, 3)])
        assert database.table("EMPLOYEE").cardinality == 1

    def test_parse_errors_propagate(self, temporal_db):
        with pytest.raises(ParseError):
            temporal_db.query("SELECT FROM WHERE")

    def test_evaluation_context_contains_all_tables(self, temporal_db):
        context = temporal_db.evaluation_context()
        assert "EMPLOYEE" in context and "PROJECT" in context

    def test_run_plan_executes_without_optimization(self, temporal_db, employee):
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Projection(
                ["EmpName", "T1", "T2"],
                TransferToStratum(BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)),
            ),
        )
        result = temporal_db.run_plan(plan)
        assert result.cardinality == employee.cardinality

    def test_execute_plan_with_optimization_disabled(self, temporal_db, paper_statement):
        plan, spec = temporal_db.parse(paper_statement)
        database = TemporalDatabase(dbms=temporal_db.dbms, optimize_queries=False)
        outcome = database.execute_plan(plan, spec)
        assert outcome.optimization.chosen_plan == plan
        assert outcome.optimization.plans_considered == 1

    def test_query_outcome_records_statement(self, temporal_db, paper_statement):
        outcome = temporal_db.execute(paper_statement)
        assert outcome.statement == paper_statement
        assert outcome.query_spec.coalesced

    def test_reference_and_engine_agree_for_multiset_query(self, temporal_db):
        statement = "SELECT EmpName FROM EMPLOYEE EXCEPT TEMPORAL SELECT EmpName FROM PROJECT"
        plan, spec = temporal_db.parse(statement)
        reference = temporal_db.evaluate_reference(plan)
        produced = temporal_db.query(statement)
        assert multiset_equivalent(reference, produced)

    def test_coalesced_flag_reaches_the_plan(self, temporal_db):
        plan, spec = temporal_db.parse(
            "SELECT EmpName FROM EMPLOYEE COALESCE"
        )
        assert spec.coalesced
        assert any(isinstance(node, Coalescing) for _, node in plan.locations())
