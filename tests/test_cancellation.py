"""In-flight deadlines, cooperative cancellation and resource guards."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.exceptions import (
    CancelledError,
    DeadlineExceededError,
    ResourceExhaustedError,
)
from repro.faults import (
    FAULTS,
    CancellationToken,
    ExecutionControl,
    ResourceGuard,
)
from repro.server import Server
from repro.session import Session
from repro.workloads import employee_relation, project_relation


class TestCancellationToken:
    def test_fresh_token_checks_clean(self):
        token = CancellationToken()
        token.check()
        assert token.cancelled is False
        assert token.expired() is False

    def test_cancel_makes_next_check_raise_with_reason(self):
        token = CancellationToken()
        token.cancel("client went away")
        with pytest.raises(CancelledError, match="client went away"):
            token.check()
        assert token.cancelled is True

    def test_deadline_expiry_raises_deadline_exceeded(self):
        clock_value = [0.0]
        token = CancellationToken(deadline=1.0, clock=lambda: clock_value[0])
        token.check()
        clock_value[0] = 1.5
        assert token.expired() is True
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_deadline_exceeded_is_a_cancelled_error(self):
        # One except clause stops both kinds of stop request.
        assert issubclass(DeadlineExceededError, CancelledError)

    def test_cancel_from_another_thread_is_seen(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join()
        with pytest.raises(CancelledError):
            token.check()


class TestResourceGuard:
    def test_row_budget(self):
        guard = ResourceGuard(max_rows=100)
        guard.charge_rows(100)
        with pytest.raises(ResourceExhaustedError, match="row budget"):
            guard.charge_rows(1)

    def test_byte_budget(self):
        guard = ResourceGuard(max_bytes=1000)
        guard.charge_bytes(1000)
        with pytest.raises(ResourceExhaustedError, match="materialization budget"):
            guard.charge_bytes(1)

    def test_charge_relation_estimates_footprint(self):
        guard = ResourceGuard(max_bytes=10)
        with pytest.raises(ResourceExhaustedError):
            guard.charge_relation(employee_relation())

    def test_unbounded_guard_never_raises(self):
        guard = ResourceGuard()
        guard.charge_rows(10**9)
        guard.charge_relation(employee_relation())
        assert guard.rows == 10**9


class TestExecutionControl:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ExecutionControl(interval=0)

    def test_tick_checks_token_then_guard(self):
        token = CancellationToken()
        control = ExecutionControl(token=token, guard=ResourceGuard(max_rows=1), interval=128)
        token.cancel()
        # token wins over the guard at the same tick
        with pytest.raises(CancelledError):
            control.tick("stratum.pull")

    def test_guarded_iterator_stops_within_one_interval(self):
        token = CancellationToken()
        control = ExecutionControl(token=token, interval=10)
        pulled = []

        def source():
            for i in range(1000):
                if i == 15:
                    token.cancel()
                yield i

        with pytest.raises(CancelledError):
            for item in control.guarded(source(), "dbms.scan"):
                pulled.append(item)
        # cancelled at tuple 15, next check at tuple 20: within one interval
        assert 15 <= len(pulled) <= 20


def make_database():
    from repro.stratum import TemporalDatabase

    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return database


class TestSessionCancellation:
    def test_pre_cancelled_token_stops_before_parsing(self):
        session = Session(make_database())
        token = CancellationToken()
        token.cancel("gone")
        with pytest.raises(CancelledError):
            session.execute("SELECT EmpName FROM EMPLOYEE", token=token)

    def test_deadline_stops_mid_execution(self):
        session = Session(make_database())
        token = CancellationToken(deadline=time.perf_counter() + 0.05)
        # a deliberately slow scan: injected stalls totalling ~2s
        with FAULTS.armed("dbms.scan", kind="latency", latency=0.5, times=4):
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                session.execute("SELECT EmpName FROM EMPLOYEE", token=token)
            wall = time.perf_counter() - started
        # stopped well under the uncancelled runtime (≥ 2s of injected stall)
        assert wall < 0.5, f"deadline ignored for {wall:.3f}s"

    def test_row_guard_enforced_through_session(self):
        session = Session(make_database())
        guard = ResourceGuard(max_rows=1)
        with pytest.raises(ResourceExhaustedError):
            session.execute("SELECT EmpName FROM EMPLOYEE", guard=guard)

    def test_byte_guard_enforced_through_session(self):
        session = Session(make_database())
        guard = ResourceGuard(max_bytes=10)
        with pytest.raises(ResourceExhaustedError):
            session.execute("SELECT EmpName FROM EMPLOYEE", guard=guard)

    def test_token_without_pressure_changes_nothing(self):
        session = Session(make_database())
        token = CancellationToken(deadline=time.perf_counter() + 60.0)
        result = session.execute(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", ("Sales",), token=token
        )
        assert {t["EmpName"] for t in result.relation.tuples} == {"Anna", "John"}


class TestServerCancellation:
    """The acceptance path: deadline and cancel end to end through the server."""

    def test_slow_query_times_out_well_under_uncancelled_runtime(self):
        server = Server(make_database(), max_concurrency=2)
        with server:
            with FAULTS.armed("dbms.scan", kind="latency", latency=0.5, times=4):
                started = time.perf_counter()
                response = server.query("SELECT EmpName FROM EMPLOYEE", timeout=0.05)
                wall = time.perf_counter() - started
            assert response.status == "timed_out"
            assert response.code == "TIMED_OUT"
            # ≥ 2s of injected stall, answered in a fraction of it
            assert wall < 0.5, f"timed out too slowly: {wall:.3f}s"
            # the worker survives and keeps serving
            assert server.query("SELECT EmpName FROM EMPLOYEE").ok
            stats = server.stats()
            assert stats.timed_out == 1 and stats.worker_crashes == 0

    def test_explicit_cancel_stops_a_running_query(self):
        server = Server(make_database(), max_concurrency=2)
        with server:
            with FAULTS.armed("dbms.scan", kind="latency", latency=10.0, times=4):
                future = server.submit("SELECT EmpName FROM EMPLOYEE")
                time.sleep(0.05)  # let a worker pick it up and hit the stall
                assert server.cancel(future.request_id) is True
                response = future.result(timeout=5.0)
            assert response.status == "cancelled"
            assert response.code == "CANCELLED"
            assert response.request_id == future.request_id
            assert server.stats().cancelled == 1

    def test_cancel_unknown_or_finished_request_returns_false(self):
        server = Server(make_database(), max_concurrency=1)
        with server:
            response = server.query("SELECT EmpName FROM EMPLOYEE")
            assert server.cancel(response.request_id) is False
            assert server.cancel(987654) is False

    def test_cancelled_while_queued_never_executes(self):
        server = Server(make_database(), max_concurrency=1)
        with server:
            with FAULTS.armed("dbms.scan", kind="latency", latency=10.0, times=4):
                blocker = server.submit("SELECT EmpName FROM EMPLOYEE")
                queued = server.submit("SELECT EmpName FROM PROJECT")
                time.sleep(0.05)
                assert server.cancel(queued.request_id) is True
                assert server.cancel(blocker.request_id) is True
                blocked_response = blocker.result(timeout=5.0)
                queued_response = queued.result(timeout=5.0)
            assert blocked_response.status == "cancelled"
            assert queued_response.status == "cancelled"
            stats = server.stats()
            assert stats.cancelled == 2 and stats.completed == 0

    def test_deadline_expired_in_queue_still_answers_timed_out(self):
        server = Server(make_database(), max_concurrency=1)
        with server:
            with FAULTS.armed("dbms.scan", kind="latency", latency=0.3, times=1):
                blocker = server.submit("SELECT EmpName FROM EMPLOYEE")
                stale = server.submit("SELECT EmpName FROM PROJECT", timeout=0.01)
                assert blocker.result(timeout=5.0).ok
                response = stale.result(timeout=5.0)
            assert response.status == "timed_out" and response.code == "TIMED_OUT"

    def test_cancellation_disabled_reverts_to_queue_deadline_only(self):
        server = Server(make_database(), max_concurrency=1, cancellation=False)
        with server:
            future = server.submit("SELECT EmpName FROM EMPLOYEE")
            assert server.cancel(future.request_id) is False  # no token registered
            assert future.result(timeout=5.0).ok

    def test_per_request_resource_budget(self):
        server = Server(make_database(), max_concurrency=1, max_rows_per_request=2)
        with server:
            response = server.query("SELECT EmpName FROM EMPLOYEE")
            assert response.status == "error"
            assert response.code == "RESOURCE_EXHAUSTED"

    def test_error_metrics_and_trace_marks(self):
        from repro.obs import Tracer

        tracer = Tracer()
        server = Server(make_database(), max_concurrency=1, tracer=tracer)
        with server:
            with FAULTS.armed("dbms.scan", kind="latency", latency=0.5, times=4):
                server.query("SELECT EmpName FROM EMPLOYEE", timeout=0.05)
        exposition = server.metrics_exposition()
        assert 'repro_request_errors_total{code="TIMED_OUT"} 1' in exposition
        failed = [
            trace
            for trace in tracer.recent()
            if trace.root.attributes.get("error") is True
        ]
        assert failed, "the timed-out request must finish an error-marked trace"
        assert failed[0].root.attributes["error_code"] == "TIMED_OUT"
