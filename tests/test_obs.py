"""The observability layer: tracing, metrics, timings, slow-query log.

Everything here is deterministic: traces run on a manually advanced clock
(injected through :class:`repro.obs.Tracer`), sampling is modular rather
than random, and the thread-safety hammers assert exact final counts after
a barrier-released burst (mirroring ``tests/test_concurrency.py``).
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.obs import MetricsRegistry, SlowQueryLog, Tracer, q_error
from repro.session import Session
from repro.stratum import TemporalDatabase
from repro.stratum.executor import StratumExecutor
from repro.tsql.parser import parse_statement
from repro.workloads import PAPER_SQL, POINT_SQL, employee_relation, project_relation


class ManualClock:
    """A monotonic clock the test advances explicitly."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_database() -> TemporalDatabase:
    database = TemporalDatabase()
    database.register("EMPLOYEE", employee_relation())
    database.register("PROJECT", project_relation())
    return database


# ---------------------------------------------------------------------------
# Tracer / Trace
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_measure_on_the_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("request", statement="SELECT 1")
        with trace.span("parse"):
            clock.advance(0.25)
        with trace.span("execute") as execute:
            with trace.span("scan"):
                clock.advance(1.0)
            clock.advance(0.5)
            execute.set(rows=7)
        tracer.finish(trace)
        root = trace.root
        assert root.duration == pytest.approx(1.75)
        parse, execute_span = root.children
        assert parse.name == "parse" and parse.duration == pytest.approx(0.25)
        assert execute_span.duration == pytest.approx(1.5)
        assert execute_span.attributes["rows"] == 7
        (scan,) = execute_span.children
        assert scan.start == pytest.approx(0.25) and scan.duration == pytest.approx(1.0)

    def test_sampling_is_deterministic_modular(self):
        clock = ManualClock()
        tracer = Tracer(sample_every=3, clock=clock)
        sampled = [tracer.start_trace("request") is not None for _ in range(9)]
        assert sampled == [True, False, False, True, False, False, True, False, False]

    def test_disabled_tracer_returns_none_without_reading_the_clock(self):
        calls = []

        def clock():
            calls.append(1)
            return 0.0

        assert Tracer(enabled=False, clock=clock).start_trace("request") is None
        assert Tracer(sample_every=0, clock=clock).start_trace("request") is None
        assert calls == []

    def test_recent_is_a_bounded_ring(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, keep=2)
        ids = []
        for _ in range(3):
            trace = tracer.start_trace("request")
            ids.append(trace.trace_id)
            tracer.finish(trace)
        recent = tracer.recent()
        assert [t.trace_id for t in recent] == ids[-2:]
        assert [t.trace_id for t in tracer.recent(limit=1)] == ids[-1:]
        assert len(set(ids)) == 3

    def test_finish_is_none_safe_and_idempotent(self):
        tracer = Tracer(clock=ManualClock())
        tracer.finish(None)
        trace = tracer.start_trace("request")
        tracer.finish(trace)
        duration = trace.duration
        tracer.finish(trace)
        assert trace.duration == duration

    def test_chrome_trace_round_trips_with_the_expected_keys(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("request")
        with trace.span("parse", dialect="tsql"):
            clock.advance(0.002)
        tracer.finish(trace)
        exported = json.loads(json.dumps(trace.to_chrome_trace()))
        assert set(exported) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert exported["otherData"]["trace_id"] == trace.trace_id
        events = exported["traceEvents"]
        assert [event["name"] for event in events] == ["request", "parse"]
        for event in events:
            assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["ph"] == "X"
        parse_event = events[1]
        assert parse_event["ts"] == pytest.approx(0.0)
        assert parse_event["dur"] == pytest.approx(2000.0)  # microseconds
        assert parse_event["args"] == {"dialect": "tsql"}

    def test_to_dict_preserves_the_span_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("request")
        with trace.span("outer"):
            with trace.span("inner"):
                clock.advance(1.0)
        tracer.finish(trace)
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        outer = payload["root"]["children"][0]
        assert outer["name"] == "outer"
        assert outer["children"][0]["name"] == "inner"
        assert outer["children"][0]["duration"] == pytest.approx(1.0)

    def test_tracer_hammer_keeps_the_ring_consistent(self):
        tracer = Tracer(keep=16)
        threads, errors = 8, []
        barrier = threading.Barrier(threads)

        def work():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(200):
                    trace = tracer.start_trace("request")
                    with trace.span("step"):
                        pass
                    tracer.finish(trace)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        recent = tracer.recent()
        assert len(recent) == 16
        assert all(trace.duration is not None for trace in recent)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(3)
        gauge.dec()
        histogram = registry.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert counter.value() == 5
        assert gauge.value() == 2
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["buckets"] == [(0.1, 1), (1.0, 2)]

    def test_counters_refuse_to_go_down_and_types_are_sticky(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total", "N.")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.counter("n_total", "N.") is counter
        with pytest.raises(ValueError):
            registry.gauge("n_total", "N.")

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("rows_total", "Rows.", labelnames=("kind",))
        counter.labels(kind="select").inc(10)
        counter.labels(kind="append").inc(1)
        assert counter.labels(kind="select").value() == 10
        with pytest.raises(ValueError):
            counter.labels(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()  # labelled instruments need .labels(...)

    def test_exposition_is_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served.").inc(3)
        latency = registry.histogram(
            "latency_seconds", "Latency.", labelnames=("kind",), buckets=(0.1,)
        )
        latency.labels(kind="select").observe(0.05)
        latency.labels(kind="select").observe(0.5)
        registry.callback("queue_depth", "Queued.", lambda: 7)
        text = registry.exposition()
        lines = text.splitlines()
        assert "# HELP requests_total Requests served." in lines
        assert "# TYPE requests_total counter" in lines
        assert "requests_total 3" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{kind="select",le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{kind="select",le="+Inf"} 2' in lines
        assert 'latency_seconds_count{kind="select"} 2' in lines
        assert "# TYPE queue_depth gauge" in lines
        assert "queue_depth 7" in lines
        assert text.endswith("\n")

    def test_snapshot_reads_callbacks_lazily(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.callback("boxed", "Boxed.", lambda: box["value"])
        assert registry.snapshot()["boxed"] == 1
        box["value"] = 9
        assert registry.snapshot()["boxed"] == 9
        assert registry.value("boxed") == 9
        assert registry.value("missing", default=0) == 0

    def test_registry_hammer_counts_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "Hammered.")
        gauge = registry.gauge("hammer_gauge", "Hammered.")
        histogram = registry.histogram(
            "hammer_seconds", "Hammered.", labelnames=("kind",), buckets=(0.5,)
        )
        threads, per_thread, errors = 8, 400, []
        barrier = threading.Barrier(threads)

        def work(index: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                child = histogram.labels(kind=f"k{index % 2}")
                for step in range(per_thread):
                    counter.inc()
                    gauge.inc()
                    gauge.dec()
                    child.observe(0.001 * step)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        assert counter.value() == threads * per_thread
        assert gauge.value() == 0
        observed = sum(
            series["count"] for series in registry.snapshot()["hammer_seconds"].values()
        )
        assert observed == threads * per_thread


# ---------------------------------------------------------------------------
# Executor timings + session traces
# ---------------------------------------------------------------------------


class TestExecutionTimings:
    def test_stratum_executor_records_node_timings_only_with_a_clock(self):
        database = make_database()
        session = Session(database)
        result = session.execute(PAPER_SQL)
        assert result.report.node_timings == {}
        assert result.report.dbms_operator_spans == []

        clock = ManualClock()
        executor = StratumExecutor(database.dbms, clock=clock)
        executor.execute(result.plan)
        report = executor.report
        assert set(report.node_timings) == set(report.node_rows)
        assert all(duration >= 0.0 for _, duration in report.node_timings.values())
        # The shipped fragments' physical operators are timed too.
        assert report.dbms_operator_spans
        assert all(span.rows is not None for span in report.dbms_operator_spans)

    def test_session_trace_covers_the_lifecycle_with_operator_children(self):
        tracer = Tracer()
        session = Session(make_database(), tracer=tracer)
        result = session.execute(PAPER_SQL)
        assert result.trace_id is not None
        trace = tracer.recent()[-1]
        assert trace.trace_id == result.trace_id
        names = [span.name for span in trace.root.children]
        assert names[:4] == ["parse", "optimize", "bind", "execute"]
        optimize = trace.find("optimize")
        assert optimize.attributes["cache_hit"] is False
        assert optimize.attributes["memo.tasks"] > 0
        assert optimize.attributes["memo.groups"] > 0
        execute = trace.find("execute")
        assert execute.attributes["rows"] == len(result.relation)
        assert execute.children  # per-operator spans

    def test_trace_operator_rows_match_explain_analyze(self):
        tracer = Tracer()
        session = Session(make_database(), tracer=tracer)
        session.execute(PAPER_SQL)
        trace = tracer.recent()[-1]
        execute = trace.find("execute")
        traced_rows = {
            tuple(child.attributes["path"]): child.attributes["rows"]
            for child in execute.children
            if "path" in child.attributes
        }
        assert traced_rows
        explain = session.explain(PAPER_SQL, analyze=True)
        compared = 0
        for line in explain.lines:
            if line.path in traced_rows and line.actual_rows is not None:
                assert traced_rows[line.path] == line.actual_rows
                compared += 1
        assert compared >= 3

    def test_explain_analyze_renders_time_columns(self):
        session = Session(make_database())
        rendered = session.query("EXPLAIN ANALYZE " + PAPER_SQL)
        tree_lines = [l for l in rendered.splitlines() if "est rows=" in l]
        assert all("time=" in line for line in tree_lines)
        # The fused/DBMS-inner convention: unmeasured operators show "-".
        assert any(line.endswith("time=-") for line in tree_lines)
        assert any("%" in line for line in tree_lines)
        assert "time=" in [l for l in rendered.splitlines() if l.startswith("execution:")][0]

    def test_plain_explain_has_no_time_columns(self):
        session = Session(make_database())
        rendered = session.query("EXPLAIN " + PAPER_SQL)
        assert "time=" not in rendered


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_emits_structured_record_with_q_errors(self, caplog):
        session = Session(make_database(), slow_query_seconds=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            result = session.execute(PAPER_SQL)
        records = [r for r in caplog.records if hasattr(r, "slow_query")]
        assert records
        payload = records[-1].slow_query
        assert payload["fingerprint"] == result.fingerprint
        assert set(payload["phase_seconds"]) == {"parse", "optimize", "execute"}
        assert payload["chosen_plan_cost"] > 0
        assert payload["operators"]
        assert all(op["q_error"] >= 1.0 for op in payload["operators"])
        assert payload["max_q_error"] == max(op["q_error"] for op in payload["operators"])
        json.dumps(payload)  # the record must be structured/serializable

    def test_off_by_default(self, caplog):
        session = Session(make_database())
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            session.execute(POINT_SQL, params=("Sales",))
        assert [r for r in caplog.records if hasattr(r, "slow_query")] == []

    def test_threshold_gates_emission(self):
        log = SlowQueryLog(0.5)
        assert log.enabled
        assert not log.should_log(0.4)
        assert log.should_log(0.5)
        assert not SlowQueryLog(None).should_log(100.0)

    def test_q_error_is_symmetric_and_floored(self):
        assert q_error(10, 2) == pytest.approx(5.0)
        assert q_error(2, 10) == pytest.approx(5.0)
        assert q_error(0, 0) == 1.0
        assert q_error(0.5, 1) == 1.0


# ---------------------------------------------------------------------------
# Statement kinds
# ---------------------------------------------------------------------------


class TestStatementKind:
    @pytest.mark.parametrize(
        "statement, kind",
        [
            (POINT_SQL, "select"),
            (PAPER_SQL, "compound"),
            ("SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept", "aggregate"),
            ("EXPLAIN " + POINT_SQL, "explain"),
        ],
    )
    def test_kind_labels_are_low_cardinality(self, statement, kind):
        assert parse_statement(statement).kind == kind
