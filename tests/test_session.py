"""Tests for the session layer: plan cache, parameters, epoch, EXPLAIN."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ParameterError
from repro.core.expressions import Literal, Parameter
from repro.core.operations import Selection
from repro.session import (
    PlanCache,
    Session,
    bind_parameters,
    collect_parameters,
    statement_fingerprint,
)
from repro.stratum import TemporalDatabase
from repro.tsql import parse_statement
from repro.workloads import employee_relation, project_relation

from .conftest import PAPER_STATEMENT


@pytest.fixture
def session():
    db = TemporalDatabase()
    db.register("EMPLOYEE", employee_relation())
    db.register("PROJECT", project_relation())
    return Session(db)


class TestLifecycle:
    def test_execute_matches_database_execute(self, session):
        via_session = session.execute(PAPER_STATEMENT).relation
        via_database = session.database.query(PAPER_STATEMENT)
        assert via_session.as_list() == via_database.as_list()

    def test_execute_reports_timings_and_report(self, session):
        result = session.execute(PAPER_STATEMENT)
        assert result.timings.total_seconds > 0
        assert result.report is not None
        assert result.report.dbms_calls >= 1
        assert result.report.node_rows  # actual cardinalities were captured

    def test_execute_tsql_facade_caches(self, session):
        db = session.database
        first = db.execute_tsql(PAPER_STATEMENT)
        second = db.execute_tsql(PAPER_STATEMENT)
        assert not first.cache_hit
        assert second.cache_hit
        assert first.relation.as_list() == second.relation.as_list()


class TestPlanCache:
    def test_repeated_statement_hits(self, session):
        first = session.execute(PAPER_STATEMENT)
        second = session.execute(PAPER_STATEMENT)
        assert not first.cache_hit
        assert second.cache_hit
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_surface_variants_share_one_entry(self, session):
        session.execute(PAPER_STATEMENT)
        variant = session.execute(
            "select  DISTINCT   EmpName from EMPLOYEE except temporal "
            "select EmpName from PROJECT order by EmpName coalesce"
        )
        assert variant.cache_hit

    def test_parameter_variants_share_one_entry(self, session):
        a = session.execute(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", params=("Sales",)
        )
        b = session.execute(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", params=("Advertising",)
        )
        assert not a.cache_hit
        assert b.cache_hit
        assert {t["EmpName"] for t in a.relation.tuples} == {"John", "Anna"}
        assert {t["EmpName"] for t in b.relation.tuples} == {"John", "Anna"}
        assert a.relation.as_multiset() != b.relation.as_multiset()

    def test_inline_literals_do_not_share(self, session):
        a = session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'")
        b = session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Advertising'")
        assert not a.cache_hit and not b.cache_hit

    def test_statistics_epoch_bump_invalidates(self, session):
        statement = "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?"
        session.execute(statement, params=("Sales",))
        assert session.execute(statement, params=("Sales",)).cache_hit
        epoch_before = session.database.statistics_epoch()
        session.database.insert("EMPLOYEE", [("Zoe", "Sales", 3, 9)])
        assert session.database.statistics_epoch() > epoch_before
        after = session.execute(statement, params=("Sales",))
        assert not after.cache_hit  # the cached plan was not reused
        assert any(t["EmpName"] == "Zoe" for t in after.relation.tuples)
        # The superseded entry was purged, not just shadowed.
        assert session.cache_info().invalidations >= 1

    def test_epoch_advances_on_create_and_drop(self):
        db = TemporalDatabase()
        e0 = db.statistics_epoch()
        db.register("EMPLOYEE", employee_relation())
        e1 = db.statistics_epoch()
        assert e1 > e0
        db.dbms.drop_table("EMPLOYEE")
        assert db.statistics_epoch() > e1

    def test_lru_eviction(self, session):
        session.cache = PlanCache(capacity=2)
        session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'")
        session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Advertising'")
        session.execute("SELECT EmpName FROM EMPLOYEE")  # evicts the oldest
        info = session.cache_info()
        assert info.size == 2 and info.evictions == 1
        assert not session.execute(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'"
        ).cache_hit

    def test_cache_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestFingerprint:
    def test_explain_prefix_is_normalized_away(self):
        plain = statement_fingerprint(parse_statement(PAPER_STATEMENT))
        explained = statement_fingerprint(parse_statement("EXPLAIN " + PAPER_STATEMENT))
        analyzed = statement_fingerprint(
            parse_statement("EXPLAIN ANALYZE " + PAPER_STATEMENT)
        )
        assert plain == explained == analyzed

    def test_distinct_statements_do_not_collide(self):
        texts = [
            "SELECT EmpName FROM EMPLOYEE",
            "SELECT DISTINCT EmpName FROM EMPLOYEE",
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'",
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?",
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales' ORDER BY EmpName",
            "SELECT EmpName FROM PROJECT",
        ]
        fingerprints = {statement_fingerprint(parse_statement(t)) for t in texts}
        assert len(fingerprints) == len(texts)

    def test_literal_type_matters(self):
        a = statement_fingerprint(parse_statement("SELECT * FROM T WHERE x = 1"))
        b = statement_fingerprint(parse_statement("SELECT * FROM T WHERE x = 1.0"))
        c = statement_fingerprint(parse_statement("SELECT * FROM T WHERE x = '1'"))
        assert len({a, b, c}) == 3


class TestParameters:
    def test_bind_substitutes_literals(self, session):
        plan, _ = session.database.parse("SELECT EmpName FROM EMPLOYEE WHERE Dept = ?")
        assert collect_parameters(plan) == (0,)
        bound = bind_parameters(plan, ("Sales",))
        assert collect_parameters(bound) == ()
        selections = [n for n in bound.nodes() if isinstance(n, Selection)]
        assert selections and Literal("Sales") in (
            selections[0].predicate.left,
            selections[0].predicate.right,
        )

    def test_bind_shares_parameter_free_subtrees(self, session):
        plan, _ = session.database.parse(PAPER_STATEMENT)
        assert bind_parameters(plan, ()) is plan

    def test_wrong_parameter_count_raises(self, session):
        with pytest.raises(ParameterError):
            session.execute("SELECT EmpName FROM EMPLOYEE WHERE Dept = ?")
        with pytest.raises(ParameterError):
            session.execute(
                "SELECT EmpName FROM EMPLOYEE WHERE Dept = ?", params=("a", "b")
            )
        with pytest.raises(ParameterError):
            session.execute("SELECT EmpName FROM EMPLOYEE", params=("stray",))

    def test_unbound_parameter_cannot_evaluate(self):
        with pytest.raises(Exception) as excinfo:
            Parameter(0).evaluate(None)
        assert "unbound" in str(excinfo.value)

    def test_marker_order_is_text_order(self, session):
        result = session.execute(
            "SELECT EmpName FROM EMPLOYEE WHERE Dept = ? AND T1 >= ?",
            params=("Sales", 2),
        )
        names = {t["EmpName"] for t in result.relation.tuples}
        assert names == {"Anna"}


class TestExplain:
    def test_explain_shows_estimates_and_actuals_everywhere(self, session):
        report = session.explain(PAPER_STATEMENT)
        assert report.lines
        for line in report.lines:
            assert line.estimated_rows >= 0
            assert line.actual_rows is not None
            assert line.engine in ("stratum", "dbms")
        rendered = report.render()
        assert "est rows=" in rendered and "actual=" in rendered
        assert "memo groups=" in rendered
        assert "rules fired during exploration" in rendered

    def test_explain_without_analyze_has_no_actuals(self, session):
        report = session.explain(PAPER_STATEMENT, analyze=False)
        assert all(line.actual_rows is None for line in report.lines)
        assert report.dbms_calls is None

    def test_explain_statement_prefix(self, session):
        result = session.execute("EXPLAIN " + PAPER_STATEMENT)
        assert result.relation is None
        assert result.explain is not None
        assert not result.explain.analyze
        analyzed = session.execute("EXPLAIN ANALYZE " + PAPER_STATEMENT)
        assert analyzed.explain.analyze
        assert analyzed.explain.result_rows is not None

    def test_explain_populates_and_reuses_the_cache(self, session):
        report = session.explain(PAPER_STATEMENT)
        assert not report.cache_hit
        result = session.execute(PAPER_STATEMENT)
        assert result.cache_hit
        assert session.explain(PAPER_STATEMENT).cache_hit

    def test_explain_cost_totals_are_consistent(self, session):
        report = session.explain(PAPER_STATEMENT, analyze=False)
        total = sum(line.cost for line in report.lines)
        assert total == pytest.approx(report.estimated_cost)

    def test_explain_query_returns_rendered_text(self, session):
        text = session.query("EXPLAIN " + PAPER_STATEMENT)
        assert isinstance(text, str)
        assert "plan cache:" in text


class TestExplainWorkloads:
    """Acceptance: estimates vs. actuals for every operator on the paper's
    chained statement and on the skewed statistics workload."""

    CHAINED = (
        "SELECT DISTINCT EmpName FROM EMPLOYEE "
        "EXCEPT TEMPORAL SELECT EmpName FROM PROJECT "
        "UNION TEMPORAL SELECT EmpName FROM PROJECT "
        "ORDER BY EmpName COALESCE"
    )

    def test_chained_workload_explain_is_fully_annotated(self, session):
        report = session.explain(self.CHAINED)
        assert len(report.lines) >= 8
        assert all(line.actual_rows is not None for line in report.lines)
        assert all(line.estimated_rows >= 0 for line in report.lines)

    def test_skewed_workload_explain_is_fully_annotated(self):
        from repro.workloads import skewed_paper_workload

        employees, projects = skewed_paper_workload(8)
        db = TemporalDatabase(use_statistics=True)
        db.register("EMPLOYEE", employees)
        db.register("PROJECT", projects)
        report = Session(db).explain(self.CHAINED)
        assert all(line.actual_rows is not None for line in report.lines)
        assert all(line.estimated_rows >= 0 for line in report.lines)
        assert report.memo_groups and report.rule_usage


class TestUseStatistics:
    def test_session_over_statistics_database(self):
        db = TemporalDatabase(use_statistics=True)
        db.register("EMPLOYEE", employee_relation())
        db.register("PROJECT", project_relation())
        session = Session(db)
        first = session.execute(PAPER_STATEMENT)
        second = session.execute(PAPER_STATEMENT)
        assert second.cache_hit
        assert first.relation.as_list() == second.relation.as_list()
        report = session.explain(PAPER_STATEMENT)
        assert all(line.actual_rows is not None for line in report.lines)
