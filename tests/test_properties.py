"""Tests for the Table 2 operation properties and their propagation (Section 5.3)."""

from repro.core.expressions import equals
from repro.core.operations import (
    Coalescing,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalDifference,
    TemporalDuplicateElimination,
    TransferToStratum,
    UnionAll,
)
from repro.core.order_spec import OrderSpec
from repro.core.properties import OperationProperties, annotate, annotated_pretty
from repro.core.query import QueryResultSpec
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation, project_relation
from repro.core.operations import BaseRelation


def paper_initial_plan():
    """The Figure 2(a) plan (without the outermost transfer, added where needed)."""
    employee = Projection(["EmpName", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA))
    project = Projection(["EmpName", "T1", "T2"], BaseRelation("PROJECT", PROJECT_SCHEMA))
    difference = TemporalDifference(TemporalDuplicateElimination(employee), project)
    return TransferToStratum(
        Sort(
            OrderSpec.ascending("EmpName"),
            Coalescing(TemporalDuplicateElimination(difference)),
        )
    )


LIST_QUERY = QueryResultSpec.list(OrderSpec.ascending("EmpName"), distinct=True)


class TestRootProperties:
    def test_list_query_root(self):
        plan = paper_initial_plan()
        properties = annotate(plan, LIST_QUERY)
        root = properties[()]
        assert root == OperationProperties(True, True, True)

    def test_multiset_query_root(self):
        plan = paper_initial_plan()
        root = annotate(plan, QueryResultSpec.multiset())[()]
        assert root.order_required is False
        assert root.duplicates_relevant is True
        assert root.period_preserving is True

    def test_set_query_root(self):
        plan = paper_initial_plan()
        root = annotate(plan, QueryResultSpec.set())[()]
        assert root.order_required is False
        assert root.duplicates_relevant is False


class TestFigure2Regions:
    """The shaded regions of Figure 2(a), expressed through the properties."""

    def setup_method(self):
        self.plan = paper_initial_plan()
        self.properties = annotate(self.plan, LIST_QUERY)
        # Path map (below the TS at the root):
        #   (0,)          sort
        #   (0, 0)        coalT
        #   (0, 0, 0)     rdupT (outer)
        #   (0, 0, 0, 0)  \T
        #   (0, 0, 0, 0, 0)        rdupT (inner, left argument)
        #   (0, 0, 0, 0, 0, 0)     π(EMPLOYEE)
        #   (0, 0, 0, 0, 1)        π(PROJECT)

    def test_order_not_required_below_sort(self):
        """Everything below the sort lies in the lightly shaded region."""
        for path, properties in self.properties.items():
            if len(path) >= 2:  # strictly below the sort
                assert properties.order_required is False, path

    def test_order_required_at_and_above_sort(self):
        assert self.properties[()].order_required is True
        assert self.properties[(0,)].order_required is True

    def test_duplicates_irrelevant_below_outer_rdupt(self):
        """The darker region: below the outer rdupT duplicates do not matter."""
        assert self.properties[(0, 0, 0, 0)].duplicates_relevant is False  # \T
        assert self.properties[(0, 0, 0, 0, 1)].duplicates_relevant is False  # right π

    def test_inner_rdupt_subtree_duplicates(self):
        """Below the inner rdupT (left argument of \\T), duplicates are again irrelevant."""
        assert self.properties[(0, 0, 0, 0, 0, 0)].duplicates_relevant is False

    def test_duplicates_relevant_above_the_difference(self):
        assert self.properties[(0,)].duplicates_relevant is True
        assert self.properties[(0, 0)].duplicates_relevant is True

    def test_periods_need_not_be_preserved_below_coalescing(self):
        """Below coalT (whose argument is snapshot-duplicate free) periods are free."""
        for path, properties in self.properties.items():
            if len(path) >= 3:  # strictly below the coalescing
                assert properties.period_preserving is False, path

    def test_periods_preserved_at_the_top(self):
        assert self.properties[()].period_preserving is True
        assert self.properties[(0,)].period_preserving is True
        assert self.properties[(0, 0)].period_preserving is True


class TestPropagationDetails:
    def test_sort_clears_order_requirement(self, employee):
        plan = Sort(OrderSpec.ascending("EmpName"), LiteralRelation(employee))
        properties = annotate(plan, LIST_QUERY)
        assert properties[()].order_required is True
        assert properties[(0,)].order_required is False

    def test_right_branch_of_temporal_difference_is_unordered(self, employee, project):
        plan = TemporalDifference(
            TemporalDuplicateElimination(LiteralRelation(employee)), LiteralRelation(project)
        )
        properties = annotate(plan, QueryResultSpec.list(OrderSpec.ascending("EmpName")))
        assert properties[(1,)].order_required is False
        assert properties[(0,)].order_required is True

    def test_union_all_children_are_unordered(self, employee):
        plan = UnionAll(LiteralRelation(employee), LiteralRelation(employee))
        properties = annotate(plan, QueryResultSpec.list(OrderSpec.ascending("EmpName")))
        assert properties[(0,)].order_required is False
        assert properties[(1,)].order_required is False

    def test_duplicates_stay_relevant_below_aggregation_like_operations(self, employee):
        """A duplicate irrelevance above must not leak through the difference's left branch."""
        plan = TemporalDuplicateElimination(
            TemporalDifference(LiteralRelation(employee), LiteralRelation(employee))
        )
        properties = annotate(plan, QueryResultSpec.multiset())
        # Left argument of the difference: duplicates still matter because the
        # difference itself is sensitive to them.
        assert properties[(0, 0)].duplicates_relevant is True

    def test_coalescing_with_possibly_duplicated_argument_preserves_periods(self, r1):
        plan = Coalescing(LiteralRelation(r1))
        properties = annotate(plan, QueryResultSpec.multiset())
        # R1 has duplicates in snapshots, so coalescing's result does depend
        # on how the argument's periods are packaged: the child must still
        # preserve periods.
        assert properties[(0,)].period_preserving is True

    def test_selection_with_temporal_predicate_blocks_period_irrelevance(self, employee):
        inner = Selection(equals("T1", 1), TemporalDuplicateElimination(LiteralRelation(employee)))
        plan = Coalescing(TemporalDuplicateElimination(inner))
        properties = annotate(plan, QueryResultSpec.multiset())
        # Below coalT periods are not preserved for its immediate child ...
        assert properties[(0,)].period_preserving is False
        # ... but the temporal selection needs its own argument's periods.
        assert properties[(0, 0, 0)].period_preserving is True

    def test_annotated_pretty_shows_flags(self):
        rendered = annotated_pretty(paper_initial_plan(), LIST_QUERY)
        assert "[T T T]" in rendered
        assert "[- - -]" in rendered
