"""Unit tests for the conventional rules of Section 4.1 (selection/projection/commutativity)."""

from repro.core.equivalence import (
    list_equivalent,
    multiset_equivalent,
    snapshot_multiset_equivalent,
)
from repro.core.expressions import count, equals, greater_than
from repro.core.operations import (
    Aggregation,
    CartesianProduct,
    Difference,
    DuplicateElimination,
    LiteralRelation,
    Projection,
    Selection,
    Sort,
    TemporalAggregation,
    TemporalCartesianProduct,
    TemporalDifference,
    TemporalDuplicateElimination,
    TemporalUnion,
    Union,
    UnionAll,
)
from repro.core.operations.base import EvaluationContext
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.core.rules import rules_by_name
from repro.core.schema import INTEGER, RelationSchema, STRING

from .strategies import NARROW_TEMPORAL_SCHEMA, SNAPSHOT_SCHEMA

CONTEXT = EvaluationContext()
RULES = rules_by_name()


def run(op):
    return op.evaluate(CONTEXT)


def trel(*rows):
    return Relation.from_rows(NARROW_TEMPORAL_SCHEMA, rows)


def srel(*rows):
    return Relation.from_rows(SNAPSHOT_SCHEMA, rows)


SAMPLE = srel(("a", 1), ("b", 2), ("a", 3), ("c", 1))
TSAMPLE = trel(("a", 1, 5), ("b", 2, 4), ("a", 3, 8), ("a", 3, 8))


def check(rule_name, plan, equivalence=list_equivalent):
    application = RULES[rule_name].apply(plan)
    assert application is not None, rule_name
    assert equivalence(run(plan), run(application.replacement)), rule_name
    return application.replacement


class TestSelectionRules:
    def test_commute_selections(self):
        plan = Selection(equals("Name", "a"), Selection(greater_than("Amount", 1), LiteralRelation(SAMPLE)))
        rewritten = check("σ-commute", plan)
        assert isinstance(rewritten, Selection)
        assert rewritten.predicate == greater_than("Amount", 1)

    def test_push_below_projection(self):
        plan = Selection(equals("Name", "a"), Projection(["Name"], LiteralRelation(SAMPLE)))
        check("σ-below-π", plan)

    def test_push_below_projection_blocked_for_computed_columns(self):
        plan = Selection(equals("Name", "a"), Projection(["Amount"], LiteralRelation(SAMPLE)))
        assert RULES["σ-below-π"].apply(plan) is None

    def test_push_below_sort(self):
        plan = Selection(
            equals("Name", "a"), Sort(OrderSpec.ascending("Amount"), LiteralRelation(SAMPLE))
        )
        check("σ-below-sort", plan)

    def test_push_below_rdup(self):
        plan = Selection(equals("Name", "a"), DuplicateElimination(LiteralRelation(SAMPLE)))
        check("σ-below-rdup", plan)

    def test_push_below_rdupt(self):
        plan = Selection(
            equals("Name", "a"), TemporalDuplicateElimination(LiteralRelation(TSAMPLE))
        )
        check("σ-below-rdupT", plan)

    def test_push_below_rdupt_blocked_for_temporal_predicates(self):
        plan = Selection(
            greater_than("T1", 2), TemporalDuplicateElimination(LiteralRelation(TSAMPLE))
        )
        assert RULES["σ-below-rdupT"].apply(plan) is None

    def test_push_into_product_left(self):
        other = Relation.from_rows(RelationSchema.snapshot([("Dept", STRING)]), [("Sales",)])
        plan = Selection(
            equals("Name", "a"),
            CartesianProduct(LiteralRelation(SAMPLE), LiteralRelation(other)),
        )
        rewritten = check("σ-into-×-left", plan)
        assert isinstance(rewritten, CartesianProduct)
        assert isinstance(rewritten.left, Selection)

    def test_push_into_product_right(self):
        other = Relation.from_rows(RelationSchema.snapshot([("Dept", STRING)]), [("Sales",), ("Ads",)])
        plan = Selection(
            equals("Dept", "Sales"),
            CartesianProduct(LiteralRelation(SAMPLE), LiteralRelation(other)),
        )
        rewritten = check("σ-into-×-right", plan)
        assert isinstance(rewritten.right, Selection)

    def test_push_into_product_blocked_for_renamed_attributes(self):
        plan = Selection(
            equals("Name", "a"),
            CartesianProduct(LiteralRelation(SAMPLE), LiteralRelation(SAMPLE)),
        )
        # "Name" exists on both sides, so the product renames it; no push-down.
        assert RULES["σ-into-×-left"].apply(plan) is None

    def test_push_into_temporal_product_left(self):
        dept = Relation.from_rows(
            RelationSchema.temporal([("Dept", STRING)], name="D"), [("Sales", 2, 6)]
        )
        plan = Selection(
            equals("Name", "a"),
            TemporalCartesianProduct(LiteralRelation(TSAMPLE), LiteralRelation(dept)),
        )
        check("σ-into-×T-left", plan)

    def test_push_into_temporal_product_blocked_for_time_predicates(self):
        dept = Relation.from_rows(
            RelationSchema.temporal([("Dept", STRING)], name="D"), [("Sales", 2, 6)]
        )
        plan = Selection(
            greater_than("T1", 3),
            TemporalCartesianProduct(LiteralRelation(TSAMPLE), LiteralRelation(dept)),
        )
        assert RULES["σ-into-×T-left"].apply(plan) is None

    def test_push_below_union_all(self):
        plan = Selection(
            equals("Name", "a"), UnionAll(LiteralRelation(SAMPLE), LiteralRelation(SAMPLE))
        )
        check("σ-below-⊔", plan)

    def test_push_below_union(self):
        plan = Selection(
            equals("Name", "a"), Union(LiteralRelation(SAMPLE), LiteralRelation(srel(("a", 1))))
        )
        check("σ-below-∪", plan, multiset_equivalent)

    def test_push_below_temporal_union(self):
        plan = Selection(
            equals("Name", "a"),
            TemporalUnion(LiteralRelation(TSAMPLE), LiteralRelation(trel(("a", 2, 9)))),
        )
        check("σ-below-∪T", plan, multiset_equivalent)

    def test_push_into_difference_left(self):
        plan = Selection(
            equals("Name", "a"),
            Difference(LiteralRelation(SAMPLE), LiteralRelation(srel(("a", 1)))),
        )
        check("σ-into-\\-left", plan)

    def test_push_into_temporal_difference_left(self):
        plan = Selection(
            equals("Name", "a"),
            TemporalDifference(LiteralRelation(TSAMPLE), LiteralRelation(trel(("a", 2, 6)))),
        )
        check("σ-into-\\T-left", plan)

    def test_push_below_aggregation(self):
        plan = Selection(
            equals("Name", "a"),
            Aggregation(["Name"], [count(alias="n")], LiteralRelation(SAMPLE)),
        )
        check("σ-below-γ", plan)

    def test_push_below_aggregation_blocked_for_aggregate_outputs(self):
        plan = Selection(
            greater_than("n", 1),
            Aggregation(["Name"], [count(alias="n")], LiteralRelation(SAMPLE)),
        )
        assert RULES["σ-below-γ"].apply(plan) is None

    def test_push_below_temporal_aggregation(self):
        plan = Selection(
            equals("Name", "a"),
            TemporalAggregation(["Name"], [count(alias="n")], LiteralRelation(TSAMPLE)),
        )
        check("σ-below-γT", plan, snapshot_multiset_equivalent)


class TestProjectionRules:
    def test_merge_projections(self):
        plan = Projection(["Name"], Projection(["Name", "Amount"], LiteralRelation(SAMPLE)))
        rewritten = check("π-cascade", plan)
        assert isinstance(rewritten, Projection)
        assert isinstance(rewritten.child, LiteralRelation)

    def test_merge_blocked_when_inner_computes(self):
        from repro.core.expressions import Arithmetic, ArithmeticOperator, ProjectionItem, attribute

        inner_item = ProjectionItem(
            Arithmetic(ArithmeticOperator.ADD, attribute("Amount"), attribute("Amount")),
            alias="Name",
        )
        plan = Projection(["Name"], Projection([inner_item], LiteralRelation(SAMPLE)))
        assert RULES["π-cascade"].apply(plan) is None

    def test_push_projection_below_union_all(self):
        plan = Projection(["Name"], UnionAll(LiteralRelation(SAMPLE), LiteralRelation(SAMPLE)))
        check("π-below-⊔", plan)


class TestCommutativityAndAssociativity:
    def test_commute_product(self):
        other = Relation.from_rows(RelationSchema.snapshot([("Dept", STRING)]), [("Sales",)])
        plan = CartesianProduct(LiteralRelation(SAMPLE), LiteralRelation(other))
        check("×-commute", plan, multiset_equivalent)

    def test_commute_product_blocked_on_clash(self):
        plan = CartesianProduct(LiteralRelation(SAMPLE), LiteralRelation(SAMPLE))
        assert RULES["×-commute"].apply(plan) is None

    def test_commute_union_all(self):
        plan = UnionAll(LiteralRelation(SAMPLE), LiteralRelation(srel(("z", 9))))
        check("⊔-commute", plan, multiset_equivalent)

    def test_commute_union(self):
        plan = Union(LiteralRelation(SAMPLE), LiteralRelation(srel(("a", 1))))
        check("∪-commute", plan, multiset_equivalent)

    def test_commute_temporal_union(self):
        from repro.core.equivalence import snapshot_set_equivalent

        plan = TemporalUnion(LiteralRelation(TSAMPLE), LiteralRelation(trel(("a", 2, 9))))
        check("∪T-commute", plan, snapshot_set_equivalent)

    def test_associate_union_all(self):
        plan = UnionAll(
            UnionAll(LiteralRelation(SAMPLE), LiteralRelation(srel(("z", 9)))),
            LiteralRelation(srel(("y", 8))),
        )
        check("⊔-assoc", plan, list_equivalent)
