"""Regression tests for the conventional optimizer's multi-match passes."""

from repro.core.expressions import AttributeRef, Comparison, ComparisonOperator, Literal
from repro.core.operations import (
    BaseRelation,
    Projection,
    Selection,
    Sort,
    UnionAll,
)
from repro.core.order_spec import OrderSpec
from repro.dbms.optimizer import ConventionalOptimizer, CostGuidedConventionalOptimizer
from repro.workloads import EMPLOYEE_SCHEMA


def predicate(value="Sales"):
    return Comparison(ComparisonOperator.EQ, AttributeRef("Dept"), Literal(value))


def selection_chain(depth):
    """``depth`` independent selection-over-sort chains joined by union ALL.

    Every chain offers one σ-below-sort rewrite per pass; the old
    one-rewrite-per-pass optimizer needed ``depth × chains`` passes and ran
    out of its budget, the multi-match optimizer handles all chains at once.
    """
    def chain():
        current = BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)
        for _ in range(depth):
            current = Sort(OrderSpec.ascending("EmpName"), current)
        return Selection(predicate(), current)

    plan = chain()
    for _ in range(7):
        plan = UnionAll(plan, chain())
    return plan


class TestMultiMatchPasses:
    def test_pass_count_bounded_on_deep_wide_plan(self):
        optimizer = ConventionalOptimizer()
        plan = selection_chain(depth=6)
        optimized = optimizer.optimize(plan)
        # The eight chains move in lock step — at least one rewrite per chain
        # per pass — so the pass count stays around the chain depth while the
        # rewrite count is many times larger.  The old one-rewrite-per-pass
        # optimizer needed one pass per rewrite and exhausted its 25-pass
        # budget on this plan without reaching the fixpoint.
        assert optimizer.last_run_rewrites > 25
        assert optimizer.last_run_passes <= 2 * 6
        assert optimizer.last_run_passes < optimizer.last_run_rewrites
        # Fixpoint actually reached: the selections sit below every sort.
        rerun = optimizer.optimize(optimized)
        assert rerun == optimized

    def test_single_rewrite_still_works(self):
        optimizer = ConventionalOptimizer()
        plan = Selection(
            predicate(),
            Projection(["EmpName", "Dept", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)),
        )
        optimized = optimizer.optimize(plan)
        assert isinstance(optimized, Projection)
        assert isinstance(optimized.child, Selection)
        assert optimizer.last_run_passes == 1
        assert optimizer.last_run_rewrites == 1


class TestCostGuidedConventionalOptimizer:
    def test_pushes_selection_below_projection(self):
        optimizer = CostGuidedConventionalOptimizer()
        plan = Selection(
            predicate(),
            Projection(["EmpName", "Dept", "T1", "T2"], BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)),
        )
        optimized = optimizer.optimize(plan)
        assert isinstance(optimized, Projection)
        assert isinstance(optimized.child, Selection)

    def test_preserves_the_delivered_order(self):
        optimizer = CostGuidedConventionalOptimizer()
        plan = Sort(
            OrderSpec.ascending("EmpName"),
            Selection(predicate(), BaseRelation("EMPLOYEE", EMPLOYEE_SCHEMA)),
        )
        optimized = optimizer.optimize(plan)
        # The fragment's result is ordered; the sort must survive (S2 is the
        # stratum's call, not the DBMS's).
        assert any(isinstance(node, Sort) for node in optimized.nodes())
