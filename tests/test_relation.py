"""Unit tests for list-based relations (Definition 2.2) and their analyses."""

import pytest

from repro.core.exceptions import SchemaError, TemporalSchemaError
from repro.core.order_spec import OrderSpec
from repro.core.period import Period
from repro.core.relation import Relation
from repro.core.schema import INTEGER, RelationSchema, STRING
from repro.workloads import EMPLOYEE_NAME_SCHEMA, employee_relation, figure3_r1

SNAPSHOT = RelationSchema.snapshot([("Name", STRING), ("Amount", INTEGER)])


class TestConstruction:
    def test_from_rows(self, employee):
        assert employee.cardinality == 5
        assert employee[0]["EmpName"] == "John"

    def test_from_dicts(self):
        relation = Relation.from_dicts(SNAPSHOT, [{"Name": "a", "Amount": 1}])
        assert len(relation) == 1

    def test_empty(self):
        relation = Relation.empty(SNAPSHOT)
        assert relation.is_empty()
        assert relation.cardinality == 0

    def test_mismatched_tuple_schema_rejected(self, employee):
        other = Relation.from_rows(SNAPSHOT, [("a", 1)])
        with pytest.raises(SchemaError):
            Relation(employee.schema, list(other.tuples))

    def test_relations_are_lists_order_matters(self):
        a = Relation.from_rows(SNAPSHOT, [("a", 1), ("b", 2)])
        b = Relation.from_rows(SNAPSHOT, [("b", 2), ("a", 1)])
        assert a != b

    def test_relations_allow_duplicates(self):
        relation = Relation.from_rows(SNAPSHOT, [("a", 1), ("a", 1)])
        assert relation.cardinality == 2
        assert relation.has_duplicates()


class TestViews:
    def test_multiset_view_counts_duplicates(self, r1):
        counts = r1.as_multiset()
        assert max(counts.values()) == 2

    def test_set_view_drops_duplicates(self, r1):
        assert len(r1.as_set()) == 4

    def test_list_view_preserves_order(self, employee):
        names = [tup["EmpName"] for tup in employee.as_list()]
        assert names == ["John", "John", "Anna", "Anna", "Anna"]


class TestDuplicateAnalyses:
    def test_regular_duplicates_detected(self, r1):
        assert r1.has_duplicates()

    def test_no_regular_duplicates(self, employee):
        assert not employee.has_duplicates()

    def test_snapshot_duplicates_detected(self, r1):
        # R1 has temporal duplicates: John's two periods overlap at months 6-7.
        assert r1.has_snapshot_duplicates()

    def test_no_snapshot_duplicates(self, r3):
        assert not r3.has_snapshot_duplicates()

    def test_snapshot_duplicates_on_snapshot_relation_falls_back(self):
        relation = Relation.from_rows(SNAPSHOT, [("a", 1), ("a", 1)])
        assert relation.has_snapshot_duplicates()


class TestCoalescingAnalyses:
    def test_projected_employee_is_not_coalesced(self, r1):
        # Anna's [2,6) and [6,12) periods are adjacent.
        assert not r1.is_coalesced()

    def test_coalesced_relation(self, expected_result):
        assert expected_result.is_coalesced()

    def test_coalescing_undefined_for_snapshot_relations(self):
        relation = Relation.from_rows(SNAPSHOT, [("a", 1)])
        with pytest.raises(TemporalSchemaError):
            relation.is_coalesced()

    def test_value_groups(self, r1):
        groups = r1.value_groups()
        assert groups[("John",)] == [Period(1, 8), Period(6, 11)]
        assert groups[("Anna",)] == [Period(2, 6), Period(2, 6), Period(6, 12)]


class TestSnapshots:
    def test_snapshot_contents(self, employee):
        snap = employee.snapshot(6)
        values = [(tup["EmpName"], tup["Dept"]) for tup in snap]
        assert values == [("John", "Sales"), ("John", "Advertising"), ("Anna", "Sales")]

    def test_snapshot_drops_time_attributes(self, employee):
        snap = employee.snapshot(6)
        assert not snap.schema.is_temporal
        assert snap.schema.attributes == ("EmpName", "Dept")

    def test_snapshot_of_snapshot_relation_rejected(self):
        relation = Relation.from_rows(SNAPSHOT, [("a", 1)])
        with pytest.raises(TemporalSchemaError):
            relation.snapshot(1)

    def test_snapshot_with_duplicates(self, r1):
        snap = r1.snapshot(6)
        names = [tup["Name"] if tup.schema.has_attribute("Name") else tup["EmpName"] for tup in snap]
        assert names.count("John") == 2

    def test_active_time_points(self):
        relation = Relation.from_rows(EMPLOYEE_NAME_SCHEMA, [("a", 1, 3), ("a", 5, 6)])
        assert relation.active_time_points() == [1, 2, 5]

    def test_interesting_time_points_bound_snapshot_changes(self, employee):
        points = employee.interesting_time_points()
        assert 1 in points and 12 in points
        # Snapshots can only change at interesting points: probing between two
        # consecutive interesting points yields identical snapshots.
        for earlier, later in zip(points, points[1:]):
            middle = earlier + (later - earlier) // 2
            if middle in (earlier, later):
                continue
            assert employee.snapshot(middle).as_multiset() == employee.snapshot(earlier).as_multiset()

    def test_time_span(self, employee):
        assert employee.time_span() == Period(1, 12)

    def test_time_span_empty(self):
        assert Relation.empty(EMPLOYEE_NAME_SCHEMA).time_span() is None


class TestDerivation:
    def test_sorted_by(self, employee):
        ordered = employee.sorted_by(OrderSpec.ascending("EmpName", "T1"))
        names = [tup["EmpName"] for tup in ordered]
        assert names == ["Anna", "Anna", "Anna", "John", "John"]
        assert ordered.order == OrderSpec.ascending("EmpName", "T1")

    def test_sort_is_stable(self):
        relation = Relation.from_rows(SNAPSHOT, [("a", 3), ("a", 1), ("a", 2)])
        ordered = relation.sorted_by(OrderSpec.ascending("Name"))
        assert [tup["Amount"] for tup in ordered] == [3, 1, 2]

    def test_concat(self):
        a = Relation.from_rows(SNAPSHOT, [("a", 1)])
        b = Relation.from_rows(SNAPSHOT, [("b", 2)])
        combined = a.concat(b)
        assert [tup["Name"] for tup in combined] == ["a", "b"]

    def test_concat_requires_union_compatibility(self, employee):
        other = Relation.from_rows(SNAPSHOT, [("a", 1)])
        with pytest.raises(SchemaError):
            employee.concat(other)

    def test_with_order_is_metadata_only(self, employee):
        annotated = employee.with_order(OrderSpec.ascending("EmpName"))
        assert list(annotated.tuples) == list(employee.tuples)
        assert annotated.order == OrderSpec.ascending("EmpName")

    def test_to_table_renders_all_columns(self, employee):
        table = employee.to_table()
        assert "EmpName" in table and "Advertising" in table

    def test_to_table_truncation(self, employee):
        table = employee.to_table(max_rows=2)
        assert "more rows" in table
