"""Tests for the DBMS catalog and stored tables."""

import pytest

from repro.core.exceptions import CatalogError, SchemaError
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.dbms.catalog import Catalog, Table, TableStatistics
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation


class TestTable:
    def test_create_with_rows(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        assert table.cardinality == 5
        assert table.statistics.cardinality == 5
        assert table.statistics.distinct_values["EmpName"] == 2

    def test_create_empty(self):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        assert table.cardinality == 0

    def test_schema_mismatch_rejected(self, project):
        with pytest.raises(SchemaError):
            Table("EMPLOYEE", EMPLOYEE_SCHEMA, project)

    def test_insert_rows(self):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        added = table.insert([("Mia", "Sales", 1, 4), ("Mia", "Ads", 4, 9)])
        assert added == 2
        assert table.cardinality == 2
        assert table.statistics.distinct_values["Dept"] == 2

    def test_replace(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        table.replace(employee)
        assert table.cardinality == 5

    def test_clustering_order_annotates_relation(self, employee):
        order = OrderSpec.ascending("EmpName")
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA, employee, clustering=order)
        assert table.relation.order == order

    def test_statistics_from_relation(self, employee):
        stats = TableStatistics.from_relation(employee)
        assert stats.cardinality == 5
        assert stats.distinct_values["Dept"] == 2


class TestCatalog:
    def test_create_and_lookup(self, employee):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        assert catalog.has_table("EMPLOYEE")
        assert catalog.table("EMPLOYEE").cardinality == 5

    def test_duplicate_names_rejected(self):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("NOPE")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        catalog.drop_table("EMPLOYEE")
        assert not catalog.has_table("EMPLOYEE")
        with pytest.raises(CatalogError):
            catalog.drop_table("EMPLOYEE")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.create_table("PROJECT", PROJECT_SCHEMA)
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        assert catalog.table_names() == ["EMPLOYEE", "PROJECT"]

    def test_statistics(self, employee, project):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        catalog.create_table("PROJECT", PROJECT_SCHEMA, project)
        assert catalog.statistics() == {"EMPLOYEE": 5, "PROJECT": 8}
