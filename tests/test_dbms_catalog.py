"""Tests for the DBMS catalog and stored tables."""

import pytest

from repro.core.exceptions import CatalogError, SchemaError
from repro.core.order_spec import OrderSpec
from repro.core.relation import Relation
from repro.dbms.catalog import Catalog, Table, TableStatistics
from repro.stats import CardinalityEstimator, TableProfile
from repro.workloads import EMPLOYEE_SCHEMA, PROJECT_SCHEMA, employee_relation


class TestTable:
    def test_create_with_rows(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        assert table.cardinality == 5
        assert table.statistics.cardinality == 5
        assert table.statistics.distinct_values["EmpName"] == 2

    def test_create_empty(self):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        assert table.cardinality == 0

    def test_schema_mismatch_rejected(self, project):
        with pytest.raises(SchemaError):
            Table("EMPLOYEE", EMPLOYEE_SCHEMA, project)

    def test_insert_rows(self):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        added = table.insert([("Mia", "Sales", 1, 4), ("Mia", "Ads", 4, 9)])
        assert added == 2
        assert table.cardinality == 2
        assert table.statistics.distinct_values["Dept"] == 2

    def test_replace(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        table.replace(employee)
        assert table.cardinality == 5

    def test_clustering_order_annotates_relation(self, employee):
        order = OrderSpec.ascending("EmpName")
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA, employee, clustering=order)
        assert table.relation.order == order

    def test_statistics_from_relation(self, employee):
        stats = TableStatistics.from_relation(employee)
        assert stats.cardinality == 5
        assert stats.distinct_values["Dept"] == 2

    def test_histogram_and_period_summaries(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        histogram = table.statistics.histogram("Dept")
        assert histogram.total == 5
        assert histogram.distinct == 2
        period = table.statistics.period_histogram()
        assert period is not None
        assert period.count == 5
        # Interleaving the table-level and statistics-level accessors must
        # not thrash the lazy profile cache.
        first = table.profile()
        table.statistics.histogram("Dept")
        assert table.profile() is first


class TestCatalog:
    def test_create_and_lookup(self, employee):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        assert catalog.has_table("EMPLOYEE")
        assert catalog.table("EMPLOYEE").cardinality == 5

    def test_duplicate_names_rejected(self):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("NOPE")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        catalog.drop_table("EMPLOYEE")
        assert not catalog.has_table("EMPLOYEE")
        with pytest.raises(CatalogError):
            catalog.drop_table("EMPLOYEE")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.create_table("PROJECT", PROJECT_SCHEMA)
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        assert catalog.table_names() == ["EMPLOYEE", "PROJECT"]

    def test_statistics(self, employee, project):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        catalog.create_table("PROJECT", PROJECT_SCHEMA, project)
        assert catalog.statistics() == {"EMPLOYEE": 5, "PROJECT": 8}

    def test_profiles_and_estimator(self, employee, project):
        catalog = Catalog()
        catalog.create_table("EMPLOYEE", EMPLOYEE_SCHEMA, employee)
        catalog.create_table("PROJECT", PROJECT_SCHEMA, project)
        profiles = catalog.profiles()
        assert set(profiles) == {"EMPLOYEE", "PROJECT"}
        assert all(isinstance(profile, TableProfile) for profile in profiles.values())
        estimator = catalog.estimator()
        assert isinstance(estimator, CardinalityEstimator)
        assert estimator.base_cardinality("EMPLOYEE") == 5.0


class TestIncrementalStatistics:
    """Satellite regression: incremental updates must equal a full recompute."""

    BATCHES = (
        [("Mia", "Sales", 1, 4), ("Mia", "Sales", 4, 9)],
        [("Tom", "Ads", 2, 5)],
        [("Mia", "Sales", 1, 4), ("Ann", "Sales", 3, 7), ("Tom", "Ads", 8, 11)],
    )

    def _table_after_inserts(self) -> Table:
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        for batch in self.BATCHES:
            table.insert(batch)
        return table

    def test_incremental_equals_recompute(self):
        table = self._table_after_inserts()
        recomputed = TableStatistics.from_relation(table.relation)
        assert table.statistics.cardinality == recomputed.cardinality == 6
        assert table.statistics.distinct_values == recomputed.distinct_values

    def test_incremental_profile_equals_recomputed_profile(self):
        table = self._table_after_inserts()
        recomputed = TableProfile.from_relation("EMPLOYEE", table.relation)
        incremental = table.profile()
        assert incremental.cardinality == recomputed.cardinality
        assert incremental.period == recomputed.period
        assert incremental.row_distinct_ratio == recomputed.row_distinct_ratio
        assert incremental.coalesced_fraction == recomputed.coalesced_fraction
        for attribute in table.schema.attributes:
            assert (
                incremental.attributes[attribute].histogram
                == recomputed.attributes[attribute].histogram
            )

    def test_insert_does_not_rescan_the_relation(self, monkeypatch):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        table.insert(self.BATCHES[0])

        def fail_from_relation(relation):  # pragma: no cover - guard only
            raise AssertionError("insert must not recompute statistics from scratch")

        monkeypatch.setattr(TableStatistics, "from_relation", fail_from_relation)
        table.insert(self.BATCHES[1])
        assert table.statistics.cardinality == 3

    def test_profile_cache_invalidated_by_insert(self):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        table.insert(self.BATCHES[0])
        before = table.profile()
        assert table.profile() is before  # cached while unchanged
        table.insert(self.BATCHES[1])
        after = table.profile()
        assert after is not before
        assert after.cardinality == 3

    def test_replace_restarts_statistics(self, employee):
        table = Table("EMPLOYEE", EMPLOYEE_SCHEMA)
        table.insert(self.BATCHES[0])
        table.replace(employee)
        recomputed = TableStatistics.from_relation(employee)
        assert table.statistics.cardinality == recomputed.cardinality
        assert table.statistics.distinct_values == recomputed.distinct_values
