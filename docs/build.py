#!/usr/bin/env python3
"""Build the documentation site from ``docs/`` — stdlib only.

The container that runs the tier-1 suite has no mkdocs/Sphinx, so this
builder is deliberately dependency-free:

* every ``docs/*.md`` page renders to ``docs/_site/*.html`` through a small
  CommonMark-subset converter (headings with GitHub-style anchor slugs,
  fenced code, lists, tables, links, inline code/emphasis);
* API reference pages are **generated from docstrings** for the public
  surface (``Session``, ``TemporalDatabase``, ``MemoSearch``,
  ``CardinalityEstimator``, ``Server``) into ``docs/_site/api/``;
* every internal link and anchor is checked against the generated page
  set — a broken link fails the build (exit 1), which is what the CI docs
  job asserts.

A ``mkdocs.yml`` is also provided for environments that do have mkdocs;
this script is the build CI runs.

Usage::

    python docs/build.py [--out docs/_site]
"""

from __future__ import annotations

import argparse
import html
import inspect
import re
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

#: The public surface the API reference documents: page name -> dotted path.
API_SURFACE = {
    "execution_options": "repro.options.ExecutionOptions",
    "session": "repro.session.session.Session",
    "temporaldatabase": "repro.stratum.layer.TemporalDatabase",
    "memosearch": "repro.search.search.MemoSearch",
    "cardinalityestimator": "repro.stats.estimator.CardinalityEstimator",
    "server": "repro.server.server.Server",
    "tracer": "repro.obs.trace.Tracer",
    "metricsregistry": "repro.obs.metrics.MetricsRegistry",
    "faultregistry": "repro.faults.registry.FaultRegistry",
    "cancellationtoken": "repro.faults.control.CancellationToken",
}

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; max-width: 56rem; margin: 2rem auto; padding: 0 1rem; line-height: 1.55; color: #1c1e21; }}
pre {{ background: #f6f8fa; padding: .8rem; overflow-x: auto; border-radius: 6px; }}
code {{ background: #f6f8fa; padding: .1rem .25rem; border-radius: 4px; font-size: .92em; }}
pre code {{ padding: 0; background: none; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #d0d7de; padding: .3rem .6rem; text-align: left; }}
nav {{ margin-bottom: 1.5rem; font-size: .92em; }}
h1, h2, h3 {{ line-height: 1.25; }}
</style>
</head>
<body>
<nav>{nav}</nav>
{body}
</body>
</html>
"""


def slugify(text: str) -> str:
    """GitHub-style heading slug: lowercase, spaces to dashes, strip punctuation."""
    text = re.sub(r"`", "", text)
    text = re.sub(r"[^\w\s-]", "", text.lower())
    return re.sub(r"[\s]+", "-", text.strip())


def _inline(text: str) -> str:
    """Render inline markdown within one line of already-escaped text."""
    text = html.escape(text, quote=False)
    text = re.sub(r"`([^`]+)`", lambda m: f"<code>{m.group(1)}</code>", text)
    text = re.sub(
        r"\[([^\]]+)\]\(([^)\s]+)\)",
        lambda m: f'<a href="{_rewrite_href(m.group(2))}">{m.group(1)}</a>',
        text,
    )
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(r"(?<![\w*])\*([^*\s][^*]*)\*", r"<em>\1</em>", text)
    return text


def _rewrite_href(href: str) -> str:
    """Internal ``.md`` links become ``.html`` links in the rendered site."""
    if href.startswith(("http://", "https://", "mailto:")):
        return href
    page, _, anchor = href.partition("#")
    if page.endswith(".md"):
        page = page[:-3] + ".html"
    return page + (f"#{anchor}" if anchor else "")


def markdown_to_html(markdown: str) -> Tuple[str, List[str], List[str]]:
    """Render a markdown page.

    Returns ``(html body, anchors defined, internal links referenced)``.
    """
    lines = markdown.split("\n")
    out: List[str] = []
    anchors: List[str] = []
    links: List[str] = []
    index = 0
    in_list: str = ""

    # Collect internal links from prose only — text inside code fences is
    # rendered literally and must not be link-checked.
    prose = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    for match in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", prose):
        href = match.group(1)
        if not href.startswith(("http://", "https://", "mailto:")):
            links.append(href)

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            out.append(f"</{in_list}>")
            in_list = ""

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if stripped.startswith("```"):
            close_list()
            index += 1
            block: List[str] = []
            while index < len(lines) and not lines[index].strip().startswith("```"):
                block.append(lines[index])
                index += 1
            index += 1  # closing fence
            code = html.escape("\n".join(block))
            out.append(f"<pre><code>{code}</code></pre>")
            continue
        heading = re.match(r"^(#{1,6})\s+(.*)$", stripped)
        if heading:
            close_list()
            level = len(heading.group(1))
            title = heading.group(2)
            slug = slugify(title)
            anchors.append(slug)
            out.append(f'<h{level} id="{slug}">{_inline(title)}</h{level}>')
            index += 1
            continue
        if stripped.startswith("|") and stripped.endswith("|"):
            close_list()
            rows: List[List[str]] = []
            while index < len(lines) and lines[index].strip().startswith("|"):
                cells = [c.strip() for c in lines[index].strip().strip("|").split("|")]
                if not all(re.fullmatch(r":?-+:?", c) for c in cells):
                    rows.append(cells)
                index += 1
            out.append("<table>")
            for row_index, row in enumerate(rows):
                tag = "th" if row_index == 0 else "td"
                out.append(
                    "<tr>" + "".join(f"<{tag}>{_inline(c)}</{tag}>" for c in row) + "</tr>"
                )
            out.append("</table>")
            continue
        bullet = re.match(r"^[-*]\s+(.*)$", stripped)
        ordered = re.match(r"^\d+\.\s+(.*)$", stripped)
        if bullet or ordered:
            wanted = "ul" if bullet else "ol"
            if in_list != wanted:
                close_list()
                out.append(f"<{wanted}>")
                in_list = wanted
            item = (bullet or ordered).group(1)
            # Continuation lines (indented) belong to the same item.
            index += 1
            while index < len(lines) and lines[index].startswith("  ") and lines[index].strip():
                item += " " + lines[index].strip()
                index += 1
            out.append(f"<li>{_inline(item)}</li>")
            continue
        if not stripped:
            close_list()
            index += 1
            continue
        # Paragraph: gather until a blank line or a block opener.
        paragraph = [stripped]
        index += 1
        while index < len(lines):
            nxt = lines[index].strip()
            if not nxt or nxt.startswith(("#", "```", "|", "- ", "* ")) or re.match(r"^\d+\.\s", nxt):
                break
            paragraph.append(nxt)
            index += 1
        out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
    close_list()
    return "\n".join(out), anchors, links


# -- API reference generation ---------------------------------------------------


def _docstring_to_markdown(doc: str) -> str:
    """Translate the docstrings' light reST conventions into markdown."""
    # :class:`~repro.x.Y` / :mod:`x` / :func:`f` ... -> `Y`
    doc = re.sub(
        r":(?:class|mod|func|meth|attr|exc|data):`~?([^`]+)`",
        lambda m: f"`{m.group(1).rsplit('.', 1)[-1]}`",
        doc,
    )
    doc = doc.replace("``", "`")
    # Fence doctest examples so they render as code.
    lines = doc.split("\n")
    out: List[str] = []
    index = 0
    while index < len(lines):
        if lines[index].lstrip().startswith(">>>"):
            out.append("```python")
            while index < len(lines) and lines[index].strip():
                out.append(lines[index].strip())
                index += 1
            out.append("```")
        else:
            out.append(lines[index])
            index += 1
    return "\n".join(out)


def _import_object(dotted: str):
    module_name, _, attribute = dotted.rpartition(".")
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def api_page_markdown(dotted: str) -> str:
    """A markdown API page for one class, generated from its docstrings."""
    cls = _import_object(dotted)
    lines: List[str] = [f"# `{cls.__name__}`", ""]
    lines.append(f"*Defined in `{cls.__module__}`.*")
    lines.append("")
    lines.append(_docstring_to_markdown(inspect.getdoc(cls) or "(no class docstring)"))
    lines.append("")
    members = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_") and name != "__init__":
            continue
        if not (inspect.isfunction(member) or isinstance(
            inspect.getattr_static(cls, name, None), property
        )):
            continue
        members.append((name, member))
    for name, member in members:
        static = inspect.getattr_static(cls, name)
        if isinstance(static, property):
            lines.append(f"## `{name}` *(property)*")
            doc = inspect.getdoc(static.fget) if static.fget else None
        else:
            try:
                signature = str(inspect.signature(member))
            except (TypeError, ValueError):  # pragma: no cover - builtins
                signature = "(...)"
            shown = cls.__name__ if name == "__init__" else name
            lines.append(f"## `{shown}{signature}`")
            doc = inspect.getdoc(member)
        lines.append("")
        lines.append(_docstring_to_markdown(doc) if doc else "(undocumented)")
        lines.append("")
    return "\n".join(lines)


# -- the build ------------------------------------------------------------------


def build(out_dir: Path) -> List[str]:
    """Build the site into ``out_dir``; return a list of broken-link errors."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    if out_dir.exists():
        shutil.rmtree(out_dir)
    (out_dir / "api").mkdir(parents=True)

    sources: Dict[str, str] = {}
    for path in sorted(DOCS_DIR.glob("*.md")):
        sources[path.name] = path.read_text(encoding="utf-8")
    for page, dotted in API_SURFACE.items():
        sources[f"api/{page}.md"] = api_page_markdown(dotted)

    nav_parts = ['<a href="{root}index.html">repro docs</a>']
    page_anchors: Dict[str, List[str]] = {}
    page_links: Dict[str, List[str]] = {}
    for name, markdown in sources.items():
        body, anchors, links = markdown_to_html(markdown)
        page_anchors[name] = anchors
        page_links[name] = links
        depth = name.count("/")
        root = "../" * depth
        nav = " · ".join(part.format(root=root) for part in nav_parts)
        title_match = re.search(r"^#\s+(.*)$", markdown, re.MULTILINE)
        title = re.sub(r"`", "", title_match.group(1)) if title_match else name
        target = out_dir / (name[:-3] + ".html")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            _PAGE_TEMPLATE.format(title=html.escape(title), nav=nav, body=body),
            encoding="utf-8",
        )

    errors: List[str] = []
    for name, links in page_links.items():
        base = Path(name).parent
        for link in links:
            page, _, anchor = link.partition("#")
            if page:
                resolved = (base / page).as_posix()
                resolved = re.sub(r"^(\./)+", "", resolved)
                # Normalise ../ segments.
                parts: List[str] = []
                for part in resolved.split("/"):
                    if part == "..":
                        if parts:
                            parts.pop()
                    elif part != ".":
                        parts.append(part)
                resolved = "/".join(parts)
                if resolved not in sources:
                    errors.append(f"{name}: broken link target {link!r}")
                    continue
            else:
                resolved = name
            if anchor and anchor not in page_anchors.get(resolved, []):
                errors.append(f"{name}: broken anchor {link!r}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=DOCS_DIR / "_site", help="output directory"
    )
    arguments = parser.parse_args()
    errors = build(arguments.out)
    pages = sorted(p.relative_to(arguments.out).as_posix() for p in arguments.out.rglob("*.html"))
    print(f"built {len(pages)} page(s) into {arguments.out}:")
    for page in pages:
        print(f"  {page}")
    if errors:
        print("\nbroken internal links:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("all internal links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
